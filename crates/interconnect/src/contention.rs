//! Utilization-driven queuing on shared fabric stages.
//!
//! The flat [`RemoteMemoryPath`](crate::RemoteMemoryPath) model charges every
//! access the same service time regardless of what the rest of the rack is
//! doing. Under exactly the loads the disaggregated design cares about — many
//! VMs funnelling traffic into one dMEMBRICK — that is wrong: the shared
//! stages of the path (the compute brick's transceiver uplink, the rack-level
//! switch, the dMEMBRICK's ingress port) queue.
//!
//! This module folds that effect in as an *open-loop utilization model*: each
//! tenant publishes its sustained offered load (bytes/s) onto the stages its
//! circuit traverses, and a read is charged an extra M/M/1-shaped waiting
//! time per stage,
//!
//! ```text
//! delay(stage) = service(stage) × ρ / (1 − ρ),   ρ = background / capacity
//! ```
//!
//! where `background` excludes the reading tenant's own contribution (you do
//! not queue behind yourself in an open model) and ρ is capped below 1.0 so
//! a saturated stage yields a large-but-finite penalty. The extra time is
//! attributed to [`LatencyComponent::Queueing`], and — crucially for
//! replay determinism — a stage with zero background load contributes
//! *nothing*: no `Queueing` entry is pushed, so the resulting
//! [`LatencyBreakdown`] is bit-identical to the flat model's.

use serde::{Deserialize, Serialize};

use dredbox_sim::time::SimDuration;
use dredbox_sim::units::{Bandwidth, ByteSize};

use crate::transaction::{LatencyBreakdown, LatencyComponent};

/// Capacities of the shared stages a remote read traverses, plus the
/// utilization cap that keeps a saturated stage's penalty finite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionConfig {
    /// Aggregate capacity of one dCOMPUBRICK's uplink towards the fabric.
    pub brick_uplink: Bandwidth,
    /// Aggregate capacity of the rack-level switch shared by every brick in
    /// the rack.
    pub rack_switch: Bandwidth,
    /// Ingress capacity of one dMEMBRICK port — the incast bottleneck.
    pub membrick_port: Bandwidth,
    /// Utilization ceiling applied before the ρ/(1−ρ) term, in `(0, 1)`.
    pub max_utilization: f64,
}

impl ContentionConfig {
    /// Defaults matching the prototype fabric: 10 Gb/s transceiver uplinks
    /// and dMEMBRICK ports, a rack switch with 16× that aggregate, and a
    /// 31/32 utilization cap (a saturated stage waits 31 service times).
    pub fn dredbox_default() -> Self {
        ContentionConfig {
            brick_uplink: Bandwidth::from_gbps(10.0),
            rack_switch: Bandwidth::from_gbps(160.0),
            membrick_port: Bandwidth::from_gbps(10.0),
            max_utilization: 0.96875,
        }
    }

    /// Whether every capacity is positive and the cap lies in `(0, 1)`.
    pub fn is_valid(&self) -> bool {
        self.brick_uplink.as_bps() > 0.0
            && self.rack_switch.as_bps() > 0.0
            && self.membrick_port.as_bps() > 0.0
            && self.max_utilization > 0.0
            && self.max_utilization < 1.0
    }
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig::dredbox_default()
    }
}

/// One shared stage of the path: its capacity and the background offered
/// load (bytes/s) currently published on it by *other* tenants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageLoad {
    /// Stage capacity.
    pub capacity: Bandwidth,
    /// Background offered load in bytes per second, excluding the tenant
    /// being charged.
    pub background_bytes_per_sec: f64,
}

impl StageLoad {
    /// Stage utilization ρ in `[0, cap]`.
    pub fn utilization(&self, cap: f64) -> f64 {
        let capacity_bytes = self.capacity.as_bps() / 8.0;
        if capacity_bytes <= 0.0 || self.background_bytes_per_sec <= 0.0 {
            return 0.0;
        }
        (self.background_bytes_per_sec / capacity_bytes).min(cap)
    }

    /// Queuing delay behind the background load for a transfer whose
    /// service time at this stage is `transfer_time(moved)`.
    pub fn queueing_delay(&self, moved: ByteSize, cap: f64) -> SimDuration {
        let rho = self.utilization(cap);
        if rho <= 0.0 {
            return SimDuration::ZERO;
        }
        let service = self.capacity.transfer_time(moved);
        SimDuration::from_nanos_f64(service.as_nanos() as f64 * rho / (1.0 - rho))
    }
}

/// Adds the per-stage queuing delays for a transfer moving `moved` bytes to
/// `breakdown` under [`LatencyComponent::Queueing`].
///
/// When every stage is uncontended the breakdown is returned *unchanged* —
/// not even a zero-duration entry is pushed — so a zero-background contention
/// model is byte-identical to the flat model.
pub fn charge_queueing(
    mut breakdown: LatencyBreakdown,
    moved: ByteSize,
    stages: &[StageLoad],
    max_utilization: f64,
) -> LatencyBreakdown {
    let mut queueing = SimDuration::ZERO;
    for stage in stages {
        queueing += stage.queueing_delay(moved, max_utilization);
    }
    if queueing > SimDuration::ZERO {
        breakdown.add(LatencyComponent::Queueing, queueing);
    }
    breakdown
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyConfig;
    use crate::transaction::RemoteMemoryPath;
    use proptest::prelude::*;

    fn stage(background: f64) -> StageLoad {
        StageLoad {
            capacity: Bandwidth::from_gbps(10.0),
            background_bytes_per_sec: background,
        }
    }

    #[test]
    fn default_config_is_valid() {
        assert!(ContentionConfig::dredbox_default().is_valid());
        assert_eq!(
            ContentionConfig::default(),
            ContentionConfig::dredbox_default()
        );
        let broken = ContentionConfig {
            max_utilization: 1.0,
            ..ContentionConfig::dredbox_default()
        };
        assert!(!broken.is_valid());
    }

    #[test]
    fn utilization_is_load_over_capacity_and_capped() {
        // 10 Gb/s = 1.25e9 B/s; half of it offered as background.
        let half = stage(0.625e9);
        assert!((half.utilization(0.96875) - 0.5).abs() < 1e-12);
        // 10× overload hits the cap.
        let overloaded = stage(12.5e9);
        assert_eq!(overloaded.utilization(0.96875), 0.96875);
        assert_eq!(stage(0.0).utilization(0.96875), 0.0);
    }

    #[test]
    fn queueing_grows_without_bound_towards_the_cap() {
        let moved = ByteSize::from_bytes(4096);
        let light = stage(0.125e9).queueing_delay(moved, 0.96875);
        let heavy = stage(1.0e9).queueing_delay(moved, 0.96875);
        let saturated = stage(100.0e9).queueing_delay(moved, 0.96875);
        assert!(light < heavy && heavy < saturated);
        // At the 31/32 cap the wait is 31 service times.
        let service = Bandwidth::from_gbps(10.0).transfer_time(moved);
        assert_eq!(saturated, service.saturating_mul(31));
    }

    proptest! {
        #[test]
        fn zero_background_is_byte_identical_to_the_flat_model(
            sizes in proptest::collection::vec(1u64..16_384, 1..64),
        ) {
            // Over an arbitrary trace of read sizes, the contention model at
            // zero background load must reproduce the flat model exactly:
            // same entries, same Debug bytes, same total.
            let path = RemoteMemoryPath::circuit_switched(LatencyConfig::dredbox_default());
            let cfg = ContentionConfig::dredbox_default();
            for &size in &sizes {
                let moved = ByteSize::from_bytes(size);
                let flat = path.read(moved);
                let stages = [
                    StageLoad { capacity: cfg.brick_uplink, background_bytes_per_sec: 0.0 },
                    StageLoad { capacity: cfg.rack_switch, background_bytes_per_sec: 0.0 },
                    StageLoad { capacity: cfg.membrick_port, background_bytes_per_sec: 0.0 },
                ];
                let contended = charge_queueing(flat.clone(), moved, &stages, cfg.max_utilization);
                prop_assert_eq!(&contended, &flat);
                prop_assert_eq!(format!("{contended:?}"), format!("{flat:?}"));
                prop_assert_eq!(contended.total().as_nanos(), flat.total().as_nanos());
            }
        }

        #[test]
        fn any_background_only_ever_adds_queueing(
            size in 1u64..16_384,
            background in 0.0f64..1e11,
        ) {
            let path = RemoteMemoryPath::circuit_switched(LatencyConfig::dredbox_default());
            let moved = ByteSize::from_bytes(size);
            let flat = path.read(moved);
            let contended = charge_queueing(
                flat.clone(),
                moved,
                &[stage(background)],
                0.96875,
            );
            prop_assert!(contended.total() >= flat.total());
            // The delta is attributed entirely to the Queueing component.
            let queueing = contended.component_total(LatencyComponent::Queueing);
            prop_assert_eq!(contended.total() - flat.total(), queueing);
        }
    }
}
