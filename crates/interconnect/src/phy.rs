//! MAC/PHY block latency model.
//!
//! On the experimental packet-switched path, dedicated MAC and PHY blocks on
//! both the dCOMPUBRICK and the dMEMBRICK frame memory transactions onto the
//! 10 Gb/s transceivers. Their traversal latency is one of the dominant
//! contributions in the Figure 8 breakdown.

use serde::{Deserialize, Serialize};

use dredbox_sim::time::SimDuration;
use dredbox_sim::units::ByteSize;

use crate::config::LatencyConfig;

/// A MAC + PCS + transceiver block on one brick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MacPhy {
    traversal: SimDuration,
    fec_penalty: SimDuration,
}

impl MacPhy {
    /// Builds the block from the shared latency configuration.
    pub fn from_config(config: &LatencyConfig) -> Self {
        MacPhy {
            traversal: config.mac_phy_traversal,
            fec_penalty: config.fec_per_traversal,
        }
    }

    /// Fixed traversal latency (excluding serialization), including any FEC
    /// penalty.
    pub fn traversal_latency(&self) -> SimDuration {
        self.traversal + self.fec_penalty
    }

    /// Time to push `frame` through the block and onto the wire at
    /// `config`'s line rate: fixed traversal plus serialization.
    pub fn transmit(&self, config: &LatencyConfig, frame: ByteSize) -> SimDuration {
        self.traversal_latency() + config.serialization(frame)
    }

    /// Time to receive and deframe `frame`: fixed traversal only (the bits
    /// were already clocked in during the transmitter's serialization time).
    pub fn receive(&self, _config: &LatencyConfig, _frame: ByteSize) -> SimDuration {
        self.traversal_latency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_includes_fec_penalty_when_configured() {
        let cfg = LatencyConfig::dredbox_default();
        let plain = MacPhy::from_config(&cfg);
        assert_eq!(plain.traversal_latency(), cfg.mac_phy_traversal);

        let with_fec = MacPhy::from_config(&cfg.clone().with_fec(SimDuration::from_nanos(150)));
        assert_eq!(
            with_fec.traversal_latency(),
            cfg.mac_phy_traversal + SimDuration::from_nanos(150)
        );
    }

    #[test]
    fn transmit_adds_serialization_receive_does_not() {
        let cfg = LatencyConfig::dredbox_default();
        let phy = MacPhy::from_config(&cfg);
        let frame = ByteSize::from_bytes(64);
        let tx = phy.transmit(&cfg, frame);
        let rx = phy.receive(&cfg, frame);
        assert!(tx > rx);
        assert_eq!(rx, cfg.mac_phy_traversal);
        assert_eq!(tx, cfg.mac_phy_traversal + cfg.serialization(frame));
    }

    #[test]
    fn bigger_frames_take_longer_to_transmit() {
        let cfg = LatencyConfig::dredbox_default();
        let phy = MacPhy::from_config(&cfg);
        let small = phy.transmit(&cfg, ByteSize::from_bytes(64));
        let large = phy.transmit(&cfg, ByteSize::from_bytes(4096));
        assert!(large > small);
    }
}
