//! The on-brick packet switch.
//!
//! On the experimental packet-based interconnect, "dedicated switching and
//! MAC/PHY blocks are used to forward memory transactions to on-brick
//! destination ports as appropriate in a round-robin fashion", and
//! orchestration keeps the switch lookup tables configured at runtime
//! (Section III). The model captures the lookup table, round-robin
//! arbitration across competing inputs and the per-hop traversal latency.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dredbox_bricks::{BrickId, PortId};
use dredbox_sim::time::SimDuration;

use crate::config::LatencyConfig;
use crate::error::InterconnectError;

/// The packet switch instantiated in one brick's programmable logic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnBrickSwitch {
    owner: BrickId,
    traversal: SimDuration,
    lookup: BTreeMap<BrickId, PortId>,
    round_robin_cursor: usize,
}

impl OnBrickSwitch {
    /// Creates the switch for brick `owner` with the configured traversal
    /// latency and an empty lookup table.
    pub fn new(owner: BrickId, config: &LatencyConfig) -> Self {
        OnBrickSwitch {
            owner,
            traversal: config.switch_traversal,
            lookup: BTreeMap::new(),
            round_robin_cursor: 0,
        }
    }

    /// The brick hosting this switch.
    pub fn owner(&self) -> BrickId {
        self.owner
    }

    /// Installs (or replaces) a lookup-table entry: packets for
    /// `destination` leave through `port`. This is the operation the
    /// orchestrator's control path performs at runtime.
    pub fn program_route(&mut self, destination: BrickId, port: PortId) {
        self.lookup.insert(destination, port);
    }

    /// Removes the route towards `destination`.
    pub fn remove_route(&mut self, destination: BrickId) -> Option<PortId> {
        self.lookup.remove(&destination)
    }

    /// Number of programmed routes.
    pub fn route_count(&self) -> usize {
        self.lookup.len()
    }

    /// Looks up the egress port for `destination`.
    ///
    /// # Errors
    ///
    /// Returns [`InterconnectError::NoSwitchRoute`] if no entry exists.
    pub fn route(&self, destination: BrickId) -> Result<PortId, InterconnectError> {
        self.lookup
            .get(&destination)
            .copied()
            .ok_or(InterconnectError::NoSwitchRoute { destination })
    }

    /// Latency for one packet to traverse the switch when `competing` other
    /// inputs want the same output in the same arbitration epoch: the
    /// round-robin arbiter serialises them, so the expected wait grows
    /// linearly with the number of competitors.
    pub fn traversal_latency(&self, competing: usize) -> SimDuration {
        self.traversal + self.traversal.saturating_mul(competing as u64)
    }

    /// Round-robin arbitration: given the set of input ports with packets
    /// pending, returns the index of the input granted this epoch and
    /// advances the cursor.
    ///
    /// Returns `None` when no input is pending.
    pub fn arbitrate(&mut self, pending_inputs: &[bool]) -> Option<usize> {
        if pending_inputs.is_empty() {
            return None;
        }
        let n = pending_inputs.len();
        for offset in 0..n {
            let idx = (self.round_robin_cursor + offset) % n;
            if pending_inputs[idx] {
                self.round_robin_cursor = (idx + 1) % n;
                return Some(idx);
            }
        }
        None
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(OnBrickSwitch {
    owner,
    traversal,
    lookup,
    round_robin_cursor,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn switch() -> OnBrickSwitch {
        OnBrickSwitch::new(BrickId(0), &LatencyConfig::dredbox_default())
    }

    #[test]
    fn lookup_table_programming() {
        let mut sw = switch();
        assert_eq!(sw.owner(), BrickId(0));
        assert_eq!(sw.route_count(), 0);
        assert!(matches!(
            sw.route(BrickId(5)),
            Err(InterconnectError::NoSwitchRoute { .. })
        ));
        let port = PortId::new(BrickId(0), 3);
        sw.program_route(BrickId(5), port);
        assert_eq!(sw.route(BrickId(5)).unwrap(), port);
        assert_eq!(sw.route_count(), 1);
        assert_eq!(sw.remove_route(BrickId(5)), Some(port));
        assert_eq!(sw.remove_route(BrickId(5)), None);
    }

    #[test]
    fn contention_increases_latency_linearly() {
        let sw = switch();
        let alone = sw.traversal_latency(0);
        let with_three = sw.traversal_latency(3);
        assert_eq!(with_three.as_nanos(), alone.as_nanos() * 4);
    }

    #[test]
    fn round_robin_is_fair() {
        let mut sw = switch();
        let pending = [true, true, true];
        let grants: Vec<usize> = (0..6).map(|_| sw.arbitrate(&pending).unwrap()).collect();
        assert_eq!(grants, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_skips_idle_inputs() {
        let mut sw = switch();
        assert_eq!(sw.arbitrate(&[]), None);
        assert_eq!(sw.arbitrate(&[false, false]), None);
        assert_eq!(sw.arbitrate(&[false, true, false]), Some(1));
        // Cursor advanced past input 1; with all pending, input 2 goes next.
        assert_eq!(sw.arbitrate(&[true, true, true]), Some(2));
        assert_eq!(sw.arbitrate(&[true, false, false]), Some(0));
    }
}
