//! The two datacenter models of the TCO study and their FCFS packing.
//!
//! "In a node of a conventional data center, when all CPUs are utilized, it
//! will not be possible to allocate more memory and vice versa. Instead in a
//! dReDBox-like datacenter each resource can be allocated independently."
//! Both models expose the same aggregate resources (Figure 11); the
//! difference is the granularity of the individually powered unit.

use serde::{Deserialize, Serialize};

use dredbox_bricks::ResourceVector;
use dredbox_sim::units::ByteSize;
use dredbox_workload::VmDemand;

/// One conventional server: cores and memory welded to one mainboard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Server {
    capacity: ResourceVector,
    used: ResourceVector,
    vm_count: u32,
}

impl Server {
    fn free(&self) -> ResourceVector {
        self.capacity.saturating_sub(&self.used)
    }
    fn fits(&self, demand: &VmDemand) -> bool {
        self.free()
            .contains(&ResourceVector::new(demand.vcpus, demand.memory))
    }
}

/// Outcome of packing a workload onto the conventional datacenter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConventionalOutcome {
    /// Total servers in the datacenter.
    pub total_servers: usize,
    /// Servers running at least one VM.
    pub servers_used: usize,
    /// VMs that could not be placed anywhere.
    pub rejected_vms: usize,
}

impl ConventionalOutcome {
    /// Servers running nothing (power-off candidates).
    pub fn servers_off(&self) -> usize {
        self.total_servers - self.servers_used
    }

    /// Fraction of servers that can be powered off, in `[0, 1]`.
    pub fn off_fraction(&self) -> f64 {
        if self.total_servers == 0 {
            return 0.0;
        }
        self.servers_off() as f64 / self.total_servers as f64
    }
}

/// The conventional datacenter: `n` identical servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConventionalDatacenter {
    servers: Vec<Server>,
}

impl ConventionalDatacenter {
    /// Builds a datacenter of `servers` identical nodes, each with
    /// `cores_per_server` cores and `memory_per_server` of RAM.
    pub fn new(servers: usize, cores_per_server: u32, memory_per_server: ByteSize) -> Self {
        ConventionalDatacenter {
            servers: vec![
                Server {
                    capacity: ResourceVector::new(cores_per_server, memory_per_server),
                    used: ResourceVector::ZERO,
                    vm_count: 0,
                };
                servers
            ],
        }
    }

    /// Aggregate resources of the datacenter (the Figure 11 equality check).
    pub fn aggregate(&self) -> ResourceVector {
        self.servers.iter().map(|s| s.capacity).sum()
    }

    /// Packs `workload` FCFS: each VM goes to the first server where *both*
    /// its cores and its memory fit.
    pub fn pack_fcfs(&self, workload: &[VmDemand]) -> ConventionalOutcome {
        let mut servers = self.servers.clone();
        let mut rejected = 0usize;
        for vm in workload {
            let slot = servers.iter_mut().find(|s| s.fits(vm));
            match slot {
                Some(server) => {
                    server.used += ResourceVector::new(vm.vcpus, vm.memory);
                    server.vm_count += 1;
                }
                None => rejected += 1,
            }
        }
        ConventionalOutcome {
            total_servers: servers.len(),
            servers_used: servers.iter().filter(|s| s.vm_count > 0).count(),
            rejected_vms: rejected,
        }
    }
}

/// Outcome of packing a workload onto the disaggregated datacenter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggregatedOutcome {
    /// Total dCOMPUBRICKs.
    pub total_compute_bricks: usize,
    /// dCOMPUBRICKs running at least one VM.
    pub compute_bricks_used: usize,
    /// Total dMEMBRICKs.
    pub total_memory_bricks: usize,
    /// dMEMBRICKs exporting at least one byte.
    pub memory_bricks_used: usize,
    /// VMs that could not be placed.
    pub rejected_vms: usize,
}

impl DisaggregatedOutcome {
    /// dCOMPUBRICKs that can be powered off.
    pub fn compute_bricks_off(&self) -> usize {
        self.total_compute_bricks - self.compute_bricks_used
    }

    /// dMEMBRICKs that can be powered off.
    pub fn memory_bricks_off(&self) -> usize {
        self.total_memory_bricks - self.memory_bricks_used
    }

    /// Fraction of dCOMPUBRICKs that can be powered off.
    pub fn compute_off_fraction(&self) -> f64 {
        if self.total_compute_bricks == 0 {
            return 0.0;
        }
        self.compute_bricks_off() as f64 / self.total_compute_bricks as f64
    }

    /// Fraction of dMEMBRICKs that can be powered off.
    pub fn memory_off_fraction(&self) -> f64 {
        if self.total_memory_bricks == 0 {
            return 0.0;
        }
        self.memory_bricks_off() as f64 / self.total_memory_bricks as f64
    }

    /// The larger of the two per-type power-off fractions — the "up to 88%
    /// of dMEMBRICKs or dCOMPUBRICKs" quantity the paper highlights.
    pub fn best_type_off_fraction(&self) -> f64 {
        self.compute_off_fraction().max(self.memory_off_fraction())
    }

    /// Fraction of all bricks (both types) that can be powered off.
    pub fn combined_off_fraction(&self) -> f64 {
        let total = self.total_compute_bricks + self.total_memory_bricks;
        if total == 0 {
            return 0.0;
        }
        (self.compute_bricks_off() + self.memory_bricks_off()) as f64 / total as f64
    }
}

/// The disaggregated datacenter: independent pools of compute bricks and
/// memory bricks with the same aggregate resources as the conventional one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggregatedDatacenter {
    compute_cores_per_brick: u32,
    compute_bricks: usize,
    memory_per_brick: ByteSize,
    memory_bricks: usize,
}

impl DisaggregatedDatacenter {
    /// Builds a datacenter of `compute_bricks` compute bricks (each with
    /// `cores_per_brick` cores) and `memory_bricks` memory bricks (each with
    /// `memory_per_brick` of RAM).
    pub fn new(
        compute_bricks: usize,
        cores_per_brick: u32,
        memory_bricks: usize,
        memory_per_brick: ByteSize,
    ) -> Self {
        DisaggregatedDatacenter {
            compute_cores_per_brick: cores_per_brick,
            compute_bricks,
            memory_per_brick,
            memory_bricks,
        }
    }

    /// Aggregate resources of the datacenter.
    pub fn aggregate(&self) -> ResourceVector {
        ResourceVector::new(
            self.compute_cores_per_brick * self.compute_bricks as u32,
            self.memory_per_brick
                .saturating_mul(self.memory_bricks as u64),
        )
    }

    /// Packs `workload` FCFS: a VM's vCPUs go to the first compute brick
    /// with enough free cores (compute is not split below brick level),
    /// while its memory is carved from the memory-brick pool first-fit,
    /// splitting across bricks when needed ("VMs are scheduled on dBRICKs
    /// which are already running a VM" — packing, not spreading).
    pub fn pack_fcfs(&self, workload: &[VmDemand]) -> DisaggregatedOutcome {
        let mut compute_free: Vec<u32> = vec![self.compute_cores_per_brick; self.compute_bricks];
        let mut compute_used: Vec<bool> = vec![false; self.compute_bricks];
        let mut memory_free: Vec<u64> = vec![self.memory_per_brick.as_bytes(); self.memory_bricks];
        let mut memory_used: Vec<bool> = vec![false; self.memory_bricks];
        let mut rejected = 0usize;

        for vm in workload {
            // Compute side: first brick with enough free cores.
            let Some(cb) = compute_free.iter().position(|&free| free >= vm.vcpus) else {
                rejected += 1;
                continue;
            };
            // Memory side: check total availability first, then carve
            // first-fit across bricks.
            let total_free: u64 = memory_free.iter().sum();
            if total_free < vm.memory.as_bytes() {
                rejected += 1;
                continue;
            }
            compute_free[cb] -= vm.vcpus;
            compute_used[cb] = true;
            let mut remaining = vm.memory.as_bytes();
            for (idx, free) in memory_free.iter_mut().enumerate() {
                if remaining == 0 {
                    break;
                }
                if *free == 0 {
                    continue;
                }
                let take = remaining.min(*free);
                *free -= take;
                remaining -= take;
                memory_used[idx] = true;
            }
            debug_assert_eq!(remaining, 0);
        }

        DisaggregatedOutcome {
            total_compute_bricks: self.compute_bricks,
            compute_bricks_used: compute_used.iter().filter(|&&u| u).count(),
            total_memory_bricks: self.memory_bricks,
            memory_bricks_used: memory_used.iter().filter(|&&u| u).count(),
            rejected_vms: rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dredbox_sim::rng::SimRng;
    use dredbox_workload::WorkloadConfig;
    use proptest::prelude::*;

    fn conventional() -> ConventionalDatacenter {
        ConventionalDatacenter::new(64, 32, ByteSize::from_gib(32))
    }

    fn disaggregated() -> DisaggregatedDatacenter {
        DisaggregatedDatacenter::new(64, 32, 64, ByteSize::from_gib(32))
    }

    #[test]
    fn aggregates_are_equal_as_in_figure_11() {
        assert_eq!(conventional().aggregate(), disaggregated().aggregate());
        assert_eq!(conventional().aggregate().cores(), 2048);
        assert_eq!(
            conventional().aggregate().memory(),
            ByteSize::from_gib(2048)
        );
    }

    #[test]
    fn half_half_packs_identically_on_both() {
        let workload: Vec<VmDemand> = (0..64).map(|_| VmDemand::from_gib(16, 16)).collect();
        let conv = conventional().pack_fcfs(&workload);
        let dis = disaggregated().pack_fcfs(&workload);
        assert_eq!(conv.rejected_vms, 0);
        assert_eq!(dis.rejected_vms, 0);
        // Exactly two VMs per server / per brick pair.
        assert_eq!(conv.servers_used, 32);
        assert_eq!(dis.compute_bricks_used, 32);
        assert_eq!(dis.memory_bricks_used, 32);
        assert!((conv.off_fraction() - 0.5).abs() < 1e-12);
        assert!((dis.combined_off_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn high_cpu_frees_most_memory_bricks() {
        let mut rng = SimRng::seed(7);
        let workload = WorkloadConfig::HighCpu.generate(64, &mut rng);
        let conv = conventional().pack_fcfs(&workload);
        let dis = disaggregated().pack_fcfs(&workload);
        // Conventional servers are core-bound: one VM per server, nothing off.
        assert!(
            conv.off_fraction() < 0.1,
            "conventional off {}",
            conv.off_fraction()
        );
        // Disaggregated: almost all memory bricks are idle.
        assert!(
            dis.memory_off_fraction() > 0.75,
            "memory bricks off {}",
            dis.memory_off_fraction()
        );
        assert!(dis.best_type_off_fraction() > 0.75);
        assert_eq!(dis.rejected_vms, 0);
        assert_eq!(conv.rejected_vms, 0);
    }

    #[test]
    fn high_ram_frees_most_compute_bricks() {
        let mut rng = SimRng::seed(8);
        let workload = WorkloadConfig::HighRam.generate(64, &mut rng);
        let conv = conventional().pack_fcfs(&workload);
        let dis = disaggregated().pack_fcfs(&workload);
        assert!(conv.off_fraction() < 0.1);
        assert!(
            dis.compute_off_fraction() > 0.75,
            "compute bricks off {}",
            dis.compute_off_fraction()
        );
    }

    #[test]
    fn oversubscribed_workload_reports_rejections() {
        let workload: Vec<VmDemand> = (0..200).map(|_| VmDemand::from_gib(32, 32)).collect();
        let conv = conventional().pack_fcfs(&workload);
        let dis = disaggregated().pack_fcfs(&workload);
        assert_eq!(conv.rejected_vms, 200 - 64);
        assert_eq!(dis.rejected_vms, 200 - 64);
        assert_eq!(conv.off_fraction(), 0.0);
        assert_eq!(dis.combined_off_fraction(), 0.0);
    }

    #[test]
    fn empty_datacenters_report_zero_fractions() {
        let conv = ConventionalDatacenter::new(0, 32, ByteSize::from_gib(32)).pack_fcfs(&[]);
        assert_eq!(conv.off_fraction(), 0.0);
        let dis = DisaggregatedDatacenter::new(0, 32, 0, ByteSize::from_gib(32)).pack_fcfs(&[]);
        assert_eq!(dis.combined_off_fraction(), 0.0);
        assert_eq!(dis.best_type_off_fraction(), 0.0);
    }

    proptest! {
        #[test]
        fn packing_never_overcommits(seed in 0u64..200, config_idx in 0usize..6, count in 1usize..128) {
            let config = WorkloadConfig::ALL[config_idx];
            let workload = config.generate(count, &mut SimRng::seed(seed));
            let conv = conventional().pack_fcfs(&workload);
            let dis = disaggregated().pack_fcfs(&workload);
            prop_assert!(conv.servers_used <= conv.total_servers);
            prop_assert!(dis.compute_bricks_used <= dis.total_compute_bricks);
            prop_assert!(dis.memory_bricks_used <= dis.total_memory_bricks);
            // The disaggregated datacenter never rejects more VMs than the
            // conventional one: it can always at least mirror the
            // conventional placement.
            prop_assert!(dis.rejected_vms <= conv.rejected_vms);
            // Placed + rejected = total.
            prop_assert!(conv.rejected_vms <= count);
        }

        #[test]
        fn off_fractions_are_probabilities(seed in 0u64..100, config_idx in 0usize..6) {
            let config = WorkloadConfig::ALL[config_idx];
            let workload = config.generate(64, &mut SimRng::seed(seed));
            let conv = conventional().pack_fcfs(&workload);
            let dis = disaggregated().pack_fcfs(&workload);
            for f in [conv.off_fraction(), dis.compute_off_fraction(), dis.memory_off_fraction(), dis.combined_off_fraction(), dis.best_type_off_fraction()] {
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
