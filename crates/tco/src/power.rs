//! Power accounting for the TCO study.
//!
//! The first TCO study "focuses on evaluating the TCO savings in terms of
//! the energy that can be saved by powering off unutilized resources":
//! every unit that runs nothing draws (approximately) nothing, every unit
//! that runs something draws its active power. Figure 13 normalizes the
//! resulting dReDBox consumption to the conventional datacenter's.

use serde::{Deserialize, Serialize};

use dredbox_sim::units::Watts;

use crate::datacenter::{ConventionalOutcome, DisaggregatedOutcome};

/// Per-unit power draws used by the study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoPowerModel {
    /// Draw of one conventional server that runs at least one VM.
    pub server_active: Watts,
    /// Draw of one dCOMPUBRICK that runs at least one VM.
    pub compute_brick_active: Watts,
    /// Draw of one dMEMBRICK that exports memory.
    pub memory_brick_active: Watts,
    /// Draw of the optical network per *active* compute brick (circuits,
    /// switch ports at ~100 mW each, mid-board optics).
    pub network_per_active_brick: Watts,
}

impl TcoPowerModel {
    /// Defaults: a 300 W dual-socket server split into a 200 W compute brick
    /// and a 100 W memory brick, plus ~2 W of optical-network overhead per
    /// active compute brick (a handful of switch ports and MBO channels).
    pub fn dredbox_default() -> Self {
        TcoPowerModel {
            server_active: Watts::new(300.0),
            compute_brick_active: Watts::new(200.0),
            memory_brick_active: Watts::new(100.0),
            network_per_active_brick: Watts::new(2.0),
        }
    }

    /// Power drawn by the conventional datacenter after powering off unused
    /// servers.
    pub fn conventional_power(&self, outcome: &ConventionalOutcome) -> Watts {
        self.server_active.scale(outcome.servers_used as f64)
    }

    /// Power drawn by the disaggregated datacenter after powering off unused
    /// bricks.
    pub fn disaggregated_power(&self, outcome: &DisaggregatedOutcome) -> Watts {
        self.compute_brick_active
            .scale(outcome.compute_bricks_used as f64)
            + self
                .memory_brick_active
                .scale(outcome.memory_bricks_used as f64)
            + self
                .network_per_active_brick
                .scale(outcome.compute_bricks_used as f64)
    }

    /// dReDBox power normalized to the conventional datacenter (the Figure
    /// 13 quantity; < 1 means the disaggregated datacenter saves energy).
    /// Returns 1.0 when the conventional datacenter draws nothing.
    pub fn normalized_power(
        &self,
        conventional: &ConventionalOutcome,
        disaggregated: &DisaggregatedOutcome,
    ) -> f64 {
        let base = self.conventional_power(conventional).as_watts();
        if base == 0.0 {
            return 1.0;
        }
        self.disaggregated_power(disaggregated).as_watts() / base
    }

    /// Energy savings fraction in `[0, 1]` (1 − normalized power, clamped).
    pub fn savings(
        &self,
        conventional: &ConventionalOutcome,
        disaggregated: &DisaggregatedOutcome,
    ) -> f64 {
        (1.0 - self.normalized_power(conventional, disaggregated)).clamp(0.0, 1.0)
    }
}

impl Default for TcoPowerModel {
    fn default() -> Self {
        TcoPowerModel::dredbox_default()
    }
}

/// Fleet-level provisioned-power accounting for a federated (multi-rack)
/// deployment — the live-system counterpart of the static Section VI study.
///
/// The study derives its savings from a one-shot FCFS packing; a running
/// federation gets the same quantity from the cluster controller, whose
/// per-rack capacity digests already aggregate each rack's provisioned
/// draw (`ClusterController::provisioned_per_rack` one crate up). This
/// type consumes that feed and reports the fleet totals the TCO argument
/// is made of: aggregate draw, the spread across racks, per-rack budget
/// headroom and the fraction of the all-on draw the power manager shed.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetPower {
    /// Provisioned draw per rack, ascending by rack id.
    pub per_rack: Vec<Watts>,
    /// Per-rack provisioned-power budget, if the fleet enforces one.
    pub budget: Option<Watts>,
}

impl FleetPower {
    /// Builds the accounting from per-rack draws and an optional budget.
    pub fn new(per_rack: Vec<Watts>, budget: Option<Watts>) -> Self {
        FleetPower { per_rack, budget }
    }

    /// Number of racks in the fleet.
    pub fn racks(&self) -> usize {
        self.per_rack.len()
    }

    /// Aggregate provisioned draw across the fleet.
    pub fn total(&self) -> Watts {
        Watts::new(self.per_rack.iter().map(|w| w.as_watts()).sum())
    }

    /// The heaviest rack: `(rack index, draw)`. `None` on an empty fleet.
    pub fn peak_rack(&self) -> Option<(usize, Watts)> {
        self.per_rack
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.as_watts().total_cmp(&b.1.as_watts()))
            .map(|(idx, &w)| (idx, w))
    }

    /// Racks whose provisioned draw has reached or passed the budget —
    /// the racks cluster routing is currently deferring admissions away
    /// from. Empty when no budget is enforced.
    pub fn racks_at_budget(&self) -> Vec<usize> {
        let Some(budget) = self.budget else {
            return Vec::new();
        };
        self.per_rack
            .iter()
            .enumerate()
            .filter(|(_, w)| w.as_watts() >= budget.as_watts())
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Total admission headroom left under the per-rack budgets (racks
    /// already over budget contribute zero). `None` without a budget.
    pub fn headroom(&self) -> Option<Watts> {
        let budget = self.budget?;
        Some(Watts::new(
            self.per_rack
                .iter()
                .map(|w| (budget.as_watts() - w.as_watts()).max(0.0))
                .sum(),
        ))
    }

    /// Fraction of the all-on draw the power manager has shed, in
    /// `[0, 1]` — the Figure 13 quantity read off the live fleet instead
    /// of the packing study. Zero when the baseline draws nothing.
    pub fn savings_vs_all_on(&self, all_on: Watts) -> f64 {
        let base = all_on.as_watts();
        if base <= 0.0 {
            return 0.0;
        }
        (1.0 - self.total().as_watts() / base).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(total: usize, used: usize) -> ConventionalOutcome {
        ConventionalOutcome {
            total_servers: total,
            servers_used: used,
            rejected_vms: 0,
        }
    }

    fn dis(
        cb_total: usize,
        cb_used: usize,
        mb_total: usize,
        mb_used: usize,
    ) -> DisaggregatedOutcome {
        DisaggregatedOutcome {
            total_compute_bricks: cb_total,
            compute_bricks_used: cb_used,
            total_memory_bricks: mb_total,
            memory_bricks_used: mb_used,
            rejected_vms: 0,
        }
    }

    #[test]
    fn split_bricks_match_a_server_when_fully_used() {
        let m = TcoPowerModel::dredbox_default();
        let conventional = conv(64, 64);
        let disaggregated = dis(64, 64, 64, 64);
        let ratio = m.normalized_power(&conventional, &disaggregated);
        // Fully used on both sides, the split should cost about the same
        // (within the small optical-network overhead).
        assert!((ratio - 1.0).abs() < 0.02, "ratio was {ratio}");
    }

    #[test]
    fn unbalanced_usage_saves_energy() {
        let m = TcoPowerModel::dredbox_default();
        // High-RAM-like outcome: all servers on conventionally, but only 9
        // compute bricks plus 56 memory bricks on in dReDBox.
        let conventional = conv(64, 64);
        let disaggregated = dis(64, 9, 64, 56);
        let ratio = m.normalized_power(&conventional, &disaggregated);
        assert!(ratio < 0.6, "expected large savings, ratio {ratio}");
        let savings = m.savings(&conventional, &disaggregated);
        assert!(savings > 0.4 && savings <= 1.0);
    }

    #[test]
    fn zero_baseline_is_handled() {
        let m = TcoPowerModel::dredbox_default();
        assert_eq!(m.normalized_power(&conv(0, 0), &dis(0, 0, 0, 0)), 1.0);
        assert_eq!(m.savings(&conv(0, 0), &dis(0, 0, 0, 0)), 0.0);
        assert_eq!(m.conventional_power(&conv(64, 10)).as_watts(), 3000.0);
        assert!(m.disaggregated_power(&dis(64, 10, 64, 10)).as_watts() > 0.0);
    }

    #[test]
    fn fleet_power_aggregates_budget_and_savings() {
        let fleet = FleetPower::new(
            vec![Watts::new(900.0), Watts::new(400.0), Watts::new(1_200.0)],
            Some(Watts::new(1_000.0)),
        );
        assert_eq!(fleet.racks(), 3);
        assert!((fleet.total().as_watts() - 2_500.0).abs() < 1e-9);
        assert_eq!(fleet.peak_rack(), Some((2, Watts::new(1_200.0))));
        // Rack 2 is over budget and deferring; racks 0 and 1 have 100 W
        // and 600 W of admission headroom left.
        assert_eq!(fleet.racks_at_budget(), vec![2]);
        assert!((fleet.headroom().expect("budgeted").as_watts() - 700.0).abs() < 1e-9);
        // All-on draw of 5 kW: the fleet sheds half.
        assert!((fleet.savings_vs_all_on(Watts::new(5_000.0)) - 0.5).abs() < 1e-9);
        assert_eq!(fleet.savings_vs_all_on(Watts::new(0.0)), 0.0);
    }

    #[test]
    fn fleet_power_without_budget_reports_no_deferral_quantities() {
        let fleet = FleetPower::new(vec![Watts::new(500.0); 4], None);
        assert_eq!(fleet.racks_at_budget(), Vec::<usize>::new());
        assert_eq!(fleet.headroom(), None);
        assert!((fleet.total().as_watts() - 2_000.0).abs() < 1e-9);
        let empty = FleetPower::default();
        assert_eq!(empty.peak_rack(), None);
        assert_eq!(empty.racks(), 0);
    }
}
