//! The TCO value-proposition case study (Section VI of the paper).
//!
//! The paper compares a dReDBox-like datacenter against a conventional one
//! built from commercial off-the-shelf servers, both holding the *same
//! aggregate* compute and memory (Figure 11). A First-Come-First-Served
//! policy schedules a workload of VMs with different resource-requirement
//! mixes (Table I) onto each datacenter; whatever individually powered unit
//! ends up running nothing can be powered off (Figure 12), which translates
//! into energy savings (Figure 13).
//!
//! * [`datacenter`] — the two datacenter models and their FCFS packing.
//! * [`power`] — per-unit power draws and the normalized-power computation.
//! * [`study`] — the experiment driver that regenerates Figures 11, 12
//!   and 13 for every Table I configuration.
//!
//! # Example
//!
//! ```
//! use dredbox_tco::prelude::*;
//! use dredbox_workload::WorkloadConfig;
//! use dredbox_sim::rng::SimRng;
//!
//! let study = TcoStudy::paper_setup();
//! let outcome = study.run_config(WorkloadConfig::HighRam, &mut SimRng::seed(1));
//! // Unbalanced workloads leave most of one brick type idle in dReDBox...
//! assert!(outcome.disaggregated.best_type_off_fraction() > 0.5);
//! // ...while the conventional datacenter can switch off almost nothing.
//! assert!(outcome.conventional.off_fraction() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod datacenter;
pub mod power;
pub mod study;

pub use datacenter::{
    ConventionalDatacenter, ConventionalOutcome, DisaggregatedDatacenter, DisaggregatedOutcome,
};
pub use power::{FleetPower, TcoPowerModel};
pub use study::{ConfigOutcome, TcoResults, TcoStudy};

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::datacenter::{
        ConventionalDatacenter, ConventionalOutcome, DisaggregatedDatacenter, DisaggregatedOutcome,
    };
    pub use crate::power::{FleetPower, TcoPowerModel};
    pub use crate::study::{ConfigOutcome, TcoResults, TcoStudy};
}
