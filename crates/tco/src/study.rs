//! The TCO study driver: Figures 11, 12 and 13.

use serde::{Deserialize, Serialize};

use dredbox_sim::report::{Figure, Row, Series, Table};
use dredbox_sim::rng::SimRng;
use dredbox_sim::units::ByteSize;
use dredbox_workload::WorkloadConfig;

use crate::datacenter::{
    ConventionalDatacenter, ConventionalOutcome, DisaggregatedDatacenter, DisaggregatedOutcome,
};
use crate::power::TcoPowerModel;

/// The packing outcome of one Table I configuration on both datacenters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigOutcome {
    /// The workload configuration.
    pub config: WorkloadConfig,
    /// Conventional-datacenter packing result.
    pub conventional: ConventionalOutcome,
    /// Disaggregated-datacenter packing result.
    pub disaggregated: DisaggregatedOutcome,
    /// dReDBox power normalized to the conventional datacenter.
    pub normalized_power: f64,
}

/// Results of the full study over every Table I configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcoResults {
    /// Per-configuration outcomes, in Table I order.
    pub outcomes: Vec<ConfigOutcome>,
}

impl TcoResults {
    /// The outcome for a specific configuration, if present.
    pub fn outcome(&self, config: WorkloadConfig) -> Option<&ConfigOutcome> {
        self.outcomes.iter().find(|o| o.config == config)
    }

    /// The maximum per-type brick power-off fraction seen across
    /// configurations (the paper reports "up to 88%").
    pub fn max_brick_off_fraction(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| o.disaggregated.best_type_off_fraction())
            .fold(0.0, f64::max)
    }

    /// The maximum energy-savings fraction seen across configurations (the
    /// paper reports "almost 50%").
    pub fn max_savings(&self) -> f64 {
        self.outcomes
            .iter()
            .map(|o| 1.0 - o.normalized_power)
            .fold(0.0, f64::max)
    }

    /// Renders Figure 12: percentage of unutilized resources that can be
    /// powered off, per configuration and datacenter type.
    pub fn figure12(&self) -> Figure {
        let mut fig =
            Figure::new("Figure 12 — Percentage of unutilized resources that can be powered off");
        let mut conventional = Series::new(
            "conventional hosts off",
            "Table I configuration index",
            "% powered off",
        );
        let mut compute = Series::new(
            "dReDBox dCOMPUBRICKs off",
            "Table I configuration index",
            "% powered off",
        );
        let mut memory = Series::new(
            "dReDBox dMEMBRICKs off",
            "Table I configuration index",
            "% powered off",
        );
        let mut combined = Series::new(
            "dReDBox all bricks off",
            "Table I configuration index",
            "% powered off",
        );
        for (idx, o) in self.outcomes.iter().enumerate() {
            let x = idx as f64;
            conventional.push(x, o.conventional.off_fraction() * 100.0);
            compute.push(x, o.disaggregated.compute_off_fraction() * 100.0);
            memory.push(x, o.disaggregated.memory_off_fraction() * 100.0);
            combined.push(x, o.disaggregated.combined_off_fraction() * 100.0);
        }
        fig.push_series(conventional);
        fig.push_series(compute);
        fig.push_series(memory);
        fig.push_series(combined);
        fig.note(format!(
            "paper: up to 88% of dMEMBRICKs or dCOMPUBRICKs powered off vs ~15% of conventional hosts; measured max brick-type fraction {:.0}%",
            self.max_brick_off_fraction() * 100.0
        ));
        fig
    }

    /// Renders Figure 13: power consumption normalized to the conventional
    /// datacenter.
    pub fn figure13(&self) -> Figure {
        let mut fig = Figure::new(
            "Figure 13 — Estimated power consumption, normalized to the conventional datacenter",
        );
        let mut conventional = Series::new(
            "conventional (baseline)",
            "Table I configuration index",
            "normalized power",
        );
        let mut dredbox = Series::new("dReDBox", "Table I configuration index", "normalized power");
        for (idx, o) in self.outcomes.iter().enumerate() {
            let x = idx as f64;
            conventional.push(x, 1.0);
            dredbox.push(x, o.normalized_power);
        }
        fig.push_series(conventional);
        fig.push_series(dredbox);
        fig.note(format!(
            "paper: up to ~50% energy savings for unbalanced workloads; measured max savings {:.0}%",
            self.max_savings() * 100.0
        ));
        fig
    }

    /// Renders the per-configuration summary as a table (one row per Table I
    /// configuration).
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(
            "TCO study summary (64 VMs, equal-aggregate datacenters)",
            [
                "Configuration",
                "conv. hosts off %",
                "dCOMPUBRICK off %",
                "dMEMBRICK off %",
                "normalized power",
            ],
        );
        for o in &self.outcomes {
            table.push(Row::new(
                o.config.name(),
                [
                    format!("{:.1}", o.conventional.off_fraction() * 100.0),
                    format!("{:.1}", o.disaggregated.compute_off_fraction() * 100.0),
                    format!("{:.1}", o.disaggregated.memory_off_fraction() * 100.0),
                    format!("{:.3}", o.normalized_power),
                ],
            ));
        }
        table
    }
}

/// The TCO study: datacenter dimensions, power model and workload size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcoStudy {
    servers: usize,
    cores_per_server: u32,
    memory_per_server: ByteSize,
    vms_per_config: usize,
    power: TcoPowerModel,
}

impl TcoStudy {
    /// The setup used for the reproduction: 64 servers of 32 cores + 32 GiB
    /// against 64 compute bricks + 64 memory bricks of the same aggregate,
    /// loaded with 64 VMs per Table I configuration.
    pub fn paper_setup() -> Self {
        TcoStudy {
            servers: 64,
            cores_per_server: 32,
            memory_per_server: ByteSize::from_gib(32),
            vms_per_config: 64,
            power: TcoPowerModel::dredbox_default(),
        }
    }

    /// Overrides the number of VMs per configuration.
    ///
    /// # Panics
    ///
    /// Panics if `vms` is zero.
    pub fn with_vms_per_config(mut self, vms: usize) -> Self {
        assert!(vms > 0, "need at least one VM per configuration");
        self.vms_per_config = vms;
        self
    }

    /// Overrides the number of servers (and matching brick counts).
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn with_servers(mut self, servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        self.servers = servers;
        self
    }

    /// Overrides the power model.
    pub fn with_power_model(mut self, power: TcoPowerModel) -> Self {
        self.power = power;
        self
    }

    /// The conventional datacenter of the study.
    pub fn conventional(&self) -> ConventionalDatacenter {
        ConventionalDatacenter::new(self.servers, self.cores_per_server, self.memory_per_server)
    }

    /// The disaggregated datacenter of the study (same aggregate resources).
    pub fn disaggregated(&self) -> DisaggregatedDatacenter {
        DisaggregatedDatacenter::new(
            self.servers,
            self.cores_per_server,
            self.servers,
            self.memory_per_server,
        )
    }

    /// Renders the Figure 11 configuration comparison as a table.
    pub fn figure11(&self) -> Table {
        let conv = self.conventional().aggregate();
        let dis = self.disaggregated().aggregate();
        let mut table = Table::new(
            "Figure 11 — Equal-aggregate datacenter configurations",
            ["Datacenter", "Units", "Aggregate cores", "Aggregate memory"],
        );
        table.push(Row::new(
            "conventional",
            [
                format!("{} servers (32 cores + 32 GiB each)", self.servers),
                conv.cores().to_string(),
                conv.memory().to_string(),
            ],
        ));
        table.push(Row::new(
            "dReDBox",
            [
                format!(
                    "{} dCOMPUBRICKs + {} dMEMBRICKs",
                    self.servers, self.servers
                ),
                dis.cores().to_string(),
                dis.memory().to_string(),
            ],
        ));
        table
    }

    /// Runs one Table I configuration.
    pub fn run_config(&self, config: WorkloadConfig, rng: &mut SimRng) -> ConfigOutcome {
        let workload = config.generate(self.vms_per_config, rng);
        let conventional = self.conventional().pack_fcfs(&workload);
        let disaggregated = self.disaggregated().pack_fcfs(&workload);
        let normalized_power = self.power.normalized_power(&conventional, &disaggregated);
        ConfigOutcome {
            config,
            conventional,
            disaggregated,
            normalized_power,
        }
    }

    /// Runs every Table I configuration.
    pub fn run_all(&self, rng: &mut SimRng) -> TcoResults {
        TcoResults {
            outcomes: WorkloadConfig::ALL
                .iter()
                .map(|c| self.run_config(*c, rng))
                .collect(),
        }
    }
}

impl Default for TcoStudy {
    fn default() -> Self {
        TcoStudy::paper_setup()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_aggregates_match() {
        let study = TcoStudy::paper_setup();
        assert_eq!(
            study.conventional().aggregate(),
            study.disaggregated().aggregate()
        );
        let table = study.figure11();
        assert_eq!(table.len(), 2);
        assert_eq!(
            table.row("conventional").unwrap().cells[1],
            table.row("dReDBox").unwrap().cells[1]
        );
    }

    #[test]
    fn study_reproduces_the_headline_shape() {
        let study = TcoStudy::paper_setup();
        let results = study.run_all(&mut SimRng::seed(2018));
        assert_eq!(results.outcomes.len(), 6);

        // Paper: up to ~88% of one brick type can be powered off.
        assert!(
            results.max_brick_off_fraction() > 0.75,
            "max brick-off fraction {}",
            results.max_brick_off_fraction()
        );
        // Paper: conventional hosts can rarely be powered off (≈15% best case).
        for o in &results.outcomes {
            assert!(
                o.conventional.off_fraction() <= 0.55,
                "{}: conventional off fraction {}",
                o.config,
                o.conventional.off_fraction()
            );
        }
        // Paper: up to ~50% energy savings; the balanced Half-Half mix saves
        // essentially nothing.
        assert!(
            results.max_savings() > 0.3,
            "max savings {}",
            results.max_savings()
        );
        let half = results.outcome(WorkloadConfig::HalfHalf).unwrap();
        assert!(half.normalized_power > 0.9);
        // Unbalanced mixes beat the balanced one.
        let high_ram = results.outcome(WorkloadConfig::HighRam).unwrap();
        assert!(high_ram.normalized_power < half.normalized_power);
    }

    #[test]
    fn figures_render_with_all_series() {
        let study = TcoStudy::paper_setup().with_vms_per_config(32);
        let results = study.run_all(&mut SimRng::seed(1));
        let fig12 = results.figure12();
        assert_eq!(fig12.series.len(), 4);
        assert!(fig12.series.iter().all(|s| s.len() == 6));
        let fig13 = results.figure13();
        assert_eq!(fig13.series.len(), 2);
        assert!(fig13.series_named("dReDBox").unwrap().y_max().unwrap() <= 1.05);
        let table = results.summary_table();
        assert_eq!(table.len(), 6);
        assert!(results.outcome(WorkloadConfig::Random).is_some());
    }

    #[test]
    fn study_is_deterministic_per_seed() {
        let study = TcoStudy::paper_setup();
        let a = study.run_all(&mut SimRng::seed(5));
        let b = study.run_all(&mut SimRng::seed(5));
        assert_eq!(a, b);
    }

    #[test]
    fn builder_overrides() {
        let study = TcoStudy::paper_setup()
            .with_servers(16)
            .with_vms_per_config(16)
            .with_power_model(TcoPowerModel::dredbox_default());
        let results = study.run_all(&mut SimRng::seed(3));
        assert_eq!(results.outcomes.len(), 6);
        assert_eq!(results.outcomes[0].conventional.total_servers, 16);
        assert_eq!(TcoStudy::default(), TcoStudy::paper_setup());
    }

    #[test]
    #[should_panic]
    fn zero_vms_rejected() {
        let _ = TcoStudy::paper_setup().with_vms_per_config(0);
    }
}
