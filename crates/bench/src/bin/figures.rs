//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!   cargo run -p dredbox-bench --bin figures -- all
//!   cargo run -p dredbox-bench --bin figures -- fig12 fig13
//!   cargo run -p dredbox-bench --bin figures -- fig7 --seed 7

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed: u64 = 2018;
    let mut wanted: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                let Some(value) = iter.next() else {
                    eprintln!("--seed needs a value");
                    return ExitCode::FAILURE;
                };
                match value.parse() {
                    Ok(s) => seed = s,
                    Err(_) => {
                        eprintln!("invalid seed: {value}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = dredbox_bench::ARTIFACTS
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
    }

    for artifact in &wanted {
        match dredbox_bench::render(artifact, seed) {
            Some(rendered) => {
                println!("{rendered}");
            }
            None => {
                eprintln!(
                    "unknown artifact: {artifact} (known: {})",
                    dredbox_bench::ARTIFACTS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    println!(
        "regenerate dReDBox paper artifacts\n\nusage: figures [--seed N] <artifact>...\n       figures all\n\nartifacts: {}",
        dredbox_bench::ARTIFACTS.join(", ")
    );
}
