//! Benchmark and figure-regeneration harness for the dReDBox reproduction.
//!
//! * The `figures` binary prints every paper table and figure
//!   (`cargo run -p dredbox-bench --bin figures -- all`).
//! * The Criterion benches (`cargo bench`) measure the hot paths of the
//!   simulation substrate itself: the BER model, the remote-access latency
//!   model, SDM scale-up handling, TCO packing and the memory-pool / RMST
//!   data structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The artifacts the `figures` binary can regenerate.
pub const ARTIFACTS: &[&str] = &[
    "table1",
    "fig7",
    "fig8",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "tco-summary",
    "ablation-path",
    "ablation-fec",
];

/// Renders one artifact by name. Returns `None` for unknown names.
pub fn render(artifact: &str, seed: u64) -> Option<String> {
    use dredbox::experiments as exp;
    let out = match artifact {
        "table1" => exp::table1().to_string(),
        "fig7" => exp::fig7(seed).to_string(),
        "fig8" => exp::fig8().to_string(),
        "fig10" => exp::fig10(seed).to_string(),
        "fig11" => exp::fig11().to_string(),
        "fig12" => exp::fig12(seed).to_string(),
        "fig13" => exp::fig13(seed).to_string(),
        "tco-summary" => exp::tco_summary(seed).to_string(),
        "ablation-path" => exp::ablation_path().to_string(),
        "ablation-fec" => exp::ablation_fec().to_string(),
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_artifact_renders() {
        for artifact in ARTIFACTS {
            let rendered = render(artifact, 2018).expect("known artifact renders");
            assert!(!rendered.is_empty());
        }
        assert!(render("fig99", 1).is_none());
    }
}
