//! Criterion bench for the Figure 8 substrate: remote-memory round-trip
//! latency breakdowns on both data paths, plus the RMST lookup on the
//! critical path of every remote transaction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dredbox::bricks::{BrickId, PortId};
use dredbox::interconnect::rmst::RmstEntry;
use dredbox::interconnect::{LatencyConfig, RemoteMemoryPath, RemoteMemorySegmentTable};
use dredbox::sim::units::ByteSize;

fn bench_paths(c: &mut Criterion) {
    let circuit = RemoteMemoryPath::circuit_switched(LatencyConfig::dredbox_default());
    let packet = RemoteMemoryPath::packet_switched(LatencyConfig::dredbox_default());
    let mut group = c.benchmark_group("remote_access/round_trip_model");
    for size in [64u64, 4096] {
        group.bench_with_input(BenchmarkId::new("circuit", size), &size, |b, &s| {
            b.iter(|| circuit.read(black_box(ByteSize::from_bytes(s))))
        });
        group.bench_with_input(BenchmarkId::new("packet", size), &size, |b, &s| {
            b.iter(|| packet.read(black_box(ByteSize::from_bytes(s))))
        });
    }
    group.finish();
}

fn bench_rmst(c: &mut Criterion) {
    const GIB: u64 = 1 << 30;
    let mut rmst = RemoteMemorySegmentTable::new(256);
    for i in 0..256u64 {
        rmst.insert(RmstEntry {
            base: i * 2 * GIB,
            size: ByteSize::from_gib(1),
            destination: BrickId((i % 16) as u32),
            port: PortId::new(BrickId(0), (i % 8) as u8),
        })
        .expect("entries fit");
    }
    c.bench_function("remote_access/rmst_lookup_hit", |b| {
        b.iter(|| rmst.lookup(black_box(200 * 2 * GIB + 4096)))
    });
    c.bench_function("remote_access/rmst_lookup_miss", |b| {
        b.iter(|| rmst.lookup(black_box(3 * GIB)).is_err())
    });
}

criterion_group!(benches, bench_paths, bench_rmst);
criterion_main!(benches);
