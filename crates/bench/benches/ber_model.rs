//! Criterion bench for the Figure 7 substrate: the receiver BER model and a
//! full measurement campaign over the two paper channels.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dredbox::optical::{BerMeasurementCampaign, LinkBudget, OpticalCircuitSwitch, ReceiverModel};
use dredbox::sim::rng::SimRng;
use dredbox::sim::units::DecibelMilliwatts;

fn bench_ber_model(c: &mut Criterion) {
    let receiver = ReceiverModel::dredbox_default();
    c.bench_function("ber/single_evaluation", |b| {
        b.iter(|| receiver.ber(black_box(DecibelMilliwatts::new(-11.7))))
    });

    c.bench_function("ber/required_power_inversion", |b| {
        b.iter(|| receiver.required_power(black_box(1e-12)))
    });

    let switch = OpticalCircuitSwitch::polatis_48();
    let channels = vec![
        (
            "ch-1 (8 hops)".to_owned(),
            LinkBudget::new(DecibelMilliwatts::new(-3.7)).with_switch_hops(&switch, 8),
        ),
        (
            "ch-8 (6 hops)".to_owned(),
            LinkBudget::new(DecibelMilliwatts::new(-3.7)).with_switch_hops(&switch, 6),
        ),
    ];
    let campaign = BerMeasurementCampaign::dredbox_default();
    c.bench_function("ber/figure7_campaign", |b| {
        b.iter_batched(
            || SimRng::seed(7),
            |mut rng| campaign.measure_all(black_box(&channels), &mut rng),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_ber_model);
criterion_main!(benches);
