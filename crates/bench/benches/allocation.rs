//! Criterion bench for the memory-management substrate: pool allocation /
//! release under every placement policy, and remote-window carving.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use dredbox::bricks::BrickId;
use dredbox::memory::{AllocationPolicy, MemoryPool, RemoteWindow};
use dredbox::sim::units::ByteSize;

fn pool_with(policy: AllocationPolicy) -> MemoryPool {
    let mut pool = MemoryPool::new(policy);
    for i in 0..64u32 {
        pool.register_membrick(BrickId(100 + i), ByteSize::from_gib(32));
    }
    pool
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory/pool_allocate_release_64x8GiB");
    for policy in [
        AllocationPolicy::FirstFit,
        AllocationPolicy::BestFit,
        AllocationPolicy::WorstFit,
        AllocationPolicy::PowerAware,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || pool_with(policy),
                    |mut pool| {
                        let mut grants = Vec::with_capacity(64);
                        for vm in 0..64u32 {
                            grants.push(
                                pool.allocate(BrickId(vm), black_box(ByteSize::from_gib(8)))
                                    .expect("fits"),
                            );
                        }
                        for grant in &grants {
                            pool.release_grant(grant).expect("release");
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_window(c: &mut Criterion) {
    c.bench_function("memory/remote_window_carve_release", |b| {
        b.iter_batched(
            || RemoteWindow::new(ByteSize::from_gib(1024)),
            |mut window| {
                let mut carved = Vec::with_capacity(128);
                for _ in 0..128 {
                    carved.push(
                        window
                            .carve(black_box(ByteSize::from_gib(8)))
                            .expect("fits"),
                    );
                }
                for addr in carved {
                    window
                        .release(addr, ByteSize::from_gib(8))
                        .expect("release");
                }
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_pool, bench_window);
criterion_main!(benches);
