//! Criterion bench for the memory-management substrate: pool allocation /
//! release under every placement policy, and remote-window carving.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use dredbox::bricks::BrickId;
use dredbox::memory::{AllocationPolicy, BrickAllocator, MemoryPool, RemoteWindow};
use dredbox::sim::rng::SimRng;
use dredbox::sim::units::ByteSize;

fn pool_with(policy: AllocationPolicy) -> MemoryPool {
    let mut pool = MemoryPool::new(policy);
    for i in 0..64u32 {
        pool.register_membrick(BrickId(100 + i), ByteSize::from_gib(32));
    }
    pool
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory/pool_allocate_release_64x8GiB");
    for policy in [
        AllocationPolicy::FirstFit,
        AllocationPolicy::BestFit,
        AllocationPolicy::WorstFit,
        AllocationPolicy::PowerAware,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || pool_with(policy),
                    |mut pool| {
                        let mut grants = Vec::with_capacity(64);
                        for vm in 0..64u32 {
                            grants.push(
                                pool.allocate(BrickId(vm), black_box(ByteSize::from_gib(8)))
                                    .expect("fits"),
                            );
                        }
                        for grant in &grants {
                            pool.release_grant(grant).expect("release");
                        }
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_window(c: &mut Criterion) {
    c.bench_function("memory/remote_window_carve_release", |b| {
        b.iter_batched(
            || RemoteWindow::new(ByteSize::from_gib(1024)),
            |mut window| {
                let mut carved = Vec::with_capacity(128);
                for _ in 0..128 {
                    carved.push(
                        window
                            .carve(black_box(ByteSize::from_gib(8)))
                            .expect("fits"),
                    );
                }
                for addr in carved {
                    window
                        .release(addr, ByteSize::from_gib(8))
                        .expect("release");
                }
            },
            BatchSize::SmallInput,
        )
    });
}

/// The old O(n) first-fit scan over a sorted `Vec`, kept verbatim as the
/// baseline the segregated free-list replaced.
struct FirstFitReference {
    free_list: Vec<(u64, u64)>,
}

impl FirstFitReference {
    fn new(capacity: ByteSize) -> Self {
        FirstFitReference {
            free_list: vec![(0, capacity.as_bytes())],
        }
    }

    fn allocate(&mut self, size: ByteSize) -> Option<u64> {
        let needed = size.as_bytes();
        let idx = self.free_list.iter().position(|(_, len)| *len >= needed)?;
        let (offset, len) = self.free_list[idx];
        if len == needed {
            self.free_list.remove(idx);
        } else {
            self.free_list[idx] = (offset + needed, len - needed);
        }
        Some(offset)
    }

    fn release(&mut self, offset: u64, size: ByteSize) {
        let end = offset + size.as_bytes();
        // The overlap validation of the old release path.
        if self
            .free_list
            .iter()
            .any(|(o, l)| offset < o + l && *o < end)
        {
            return;
        }
        let pos = self
            .free_list
            .iter()
            .position(|(o, _)| *o > offset)
            .unwrap_or(self.free_list.len());
        self.free_list.insert(pos, (offset, size.as_bytes()));
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.free_list.len());
        for &(o, l) in &self.free_list {
            if let Some(last) = merged.last_mut() {
                if last.0 + last.1 == o {
                    last.1 += l;
                    continue;
                }
            }
            merged.push((o, l));
        }
        self.free_list = merged;
    }
}

/// A deterministic 10k-op mixed alloc/release trace over one 512-GiB
/// memory tray. Irregular sizes (uniform 1–512 MiB) fragment the free list
/// into hundreds of ranges: released ranges rarely match a later request,
/// so gaps persist, and the old first-fit allocator pays an O(n) scan per
/// allocation plus O(n) validation/coalescing passes per release — the hot
/// path the size-class index removes.
fn mixed_ops(count: usize) -> Vec<(bool, u64)> {
    let mut rng = SimRng::seed(4242);
    (0..count)
        .map(|_| (rng.chance(0.55), rng.range(1u64..=512)))
        .collect()
}

fn bench_allocator_mixed(c: &mut Criterion) {
    const MIB: u64 = 1 << 20;
    let ops = mixed_ops(10_000);
    let mut group = c.benchmark_group("memory/allocator_mixed_10k_ops");

    group.bench_function("segregated_free_list", |b| {
        b.iter_batched(
            || ops.clone(),
            |ops| {
                let mut alloc = BrickAllocator::new(BrickId(0), ByteSize::from_gib(512));
                let mut live: Vec<(u64, ByteSize)> = Vec::new();
                for (do_alloc, n) in ops {
                    if do_alloc || live.is_empty() {
                        let size = ByteSize::from_bytes(n * MIB);
                        if let Ok(offset) = alloc.allocate(black_box(size)) {
                            live.push((offset, size));
                        }
                    } else {
                        let (offset, size) = live.swap_remove(n as usize % live.len());
                        alloc.release(offset, size).expect("live range releases");
                    }
                }
                black_box(alloc.free())
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("first_fit_reference", |b| {
        b.iter_batched(
            || ops.clone(),
            |ops| {
                let mut alloc = FirstFitReference::new(ByteSize::from_gib(512));
                let mut live: Vec<(u64, ByteSize)> = Vec::new();
                for (do_alloc, n) in ops {
                    if do_alloc || live.is_empty() {
                        let size = ByteSize::from_bytes(n * MIB);
                        if let Some(offset) = alloc.allocate(black_box(size)) {
                            live.push((offset, size));
                        }
                    } else {
                        let (offset, size) = live.swap_remove(n as usize % live.len());
                        alloc.release(offset, size);
                    }
                }
                black_box(alloc.free_list.len())
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_pool, bench_window, bench_allocator_mixed);
criterion_main!(benches);
