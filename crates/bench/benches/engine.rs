//! Criterion bench for the discrete-event engine itself, tracked in
//! `BENCH_engine.json` (set `CRITERION_SUMMARY_JSON`).
//!
//! The groups:
//!
//! * `engine/scenario_replay` — full closed-loop scenario replays
//!   (steady-state and the 4096-arrival rack-scale control-plane stress
//!   case) timed end to end. The benchmark id carries the replay's event
//!   count, so `events * 1e9 / median_ns_per_iter` is the headline
//!   events-per-second figure.
//! * `engine/scenario_sharding` — the same steady-state replay under both
//!   [`ShardingMode`]s. One rack resolves to one shard either way, so this
//!   tracks the overhead of the sharded calendar machinery itself.
//! * `engine/synthetic_relay` — a pure engine trace with no system model
//!   behind it: self-rescheduling event chains, one per shard, with every
//!   eighth hop crossing shards through the timestamped mailbox. Run at
//!   1 / 2 / 4 shards over 100k events, this isolates calendar + mailbox
//!   cost from scenario work.
//! * `engine/data_path` — the incast scenario with the load-dependent data
//!   path on vs off (contention disabled). The delta is the cost of the
//!   contention model itself: per-stage ledger lookups, queuing-delay
//!   pricing and the per-access cache bookkeeping on ~10k accesses.
//! * `engine/threads_sweep` — the federated `datacenter` (16 racks, ~150k
//!   events) and `datacenter-64` (64 racks, ~1.2M events) scenarios under
//!   the conservative threaded runner at 1 / 2 / 4 workers. On a
//!   multi-core host this is the parallel-speedup headline; on a
//!   single-core host it prices the epoch-barrier overhead instead (the
//!   report is bit-identical either way — the golden tests prove that
//!   separately).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use dredbox::prelude::*;

/// A synthetic relay world: each event carries a countdown and reschedules
/// itself one nanosecond later until it reaches zero; every eighth hop on a
/// multi-shard engine crosses to the next shard through the mailbox instead.
struct Relay {
    shards: u32,
    hops: u64,
}

impl ShardedProcess for Relay {
    type Event = u64;

    fn handle(
        &mut self,
        shard: ShardId,
        now: SimTime,
        event: u64,
        ctx: &mut ShardContext<'_, u64>,
    ) {
        self.hops += 1;
        if event == 0 {
            return;
        }
        let at = now + SimDuration::from_nanos(1);
        if self.shards > 1 && self.hops % 8 == 0 {
            ctx.send(ShardId((shard.0 + 1) % self.shards), at, event - 1);
        } else {
            ctx.schedule(at, event - 1);
        }
    }
}

/// Drives `total` events through a `shards`-shard engine and returns the
/// processed count (asserted, so a scheduling bug fails the bench loudly).
fn run_relay(shards: u32, total: u64) -> u64 {
    let mut engine = ShardedEngine::new(shards as usize);
    let per_chain = total / u64::from(shards);
    for s in 0..shards {
        engine.schedule(ShardId(s), SimTime::ZERO, per_chain - 1);
    }
    let mut world = Relay { shards, hops: 0 };
    let outcome = engine.run(&mut world);
    assert_eq!(outcome, RunOutcome::Drained);
    assert_eq!(engine.processed(), per_chain * u64::from(shards));
    engine.processed()
}

fn bench_scenario_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/scenario_replay");
    for spec in [ScenarioSpec::steady_state(), ScenarioSpec::rack_scale()] {
        // Declaring the replay's event count as throughput puts the
        // headline events-per-second figure in the report and summary JSON.
        let events = spec.run(2018).expect("scenario runs").events;
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::new(&spec.name, format!("{events}_events")),
            &spec,
            |b, spec| b.iter(|| black_box(spec.run(2018).expect("scenario runs"))),
        );
    }
    group.finish();
}

fn bench_system_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/system_build");
    for spec in [ScenarioSpec::steady_state(), ScenarioSpec::rack_scale()] {
        group.bench_with_input(BenchmarkId::from_parameter(&spec.name), &spec, |b, spec| {
            b.iter(|| black_box(DredboxSystem::build(spec.system.clone()).expect("builds")))
        });
    }
    group.finish();
}

fn bench_scenario_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/scenario_sharding");
    for mode in [ShardingMode::Single, ShardingMode::PerRack] {
        let mut spec = ScenarioSpec::steady_state();
        spec.sharding = mode;
        group.throughput(Throughput::Elements(
            spec.run(2018).expect("scenario runs").events,
        ));
        group.bench_with_input(
            BenchmarkId::new("steady-state", format!("{mode:?}")),
            &spec,
            |b, spec| b.iter(|| black_box(spec.run(2018).expect("scenario runs"))),
        );
    }
    group.finish();
}

fn bench_data_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/data_path");
    let contended = ScenarioSpec::incast();
    let mut uncontended = ScenarioSpec::incast();
    uncontended
        .data_path
        .as_mut()
        .expect("incast configures the data path")
        .contention = None;
    for (label, spec) in [("contended", contended), ("uncontended", uncontended)] {
        let report = spec.run(2018).expect("scenario runs");
        let reads = report.data_path.as_ref().expect("data-path stats").reads;
        group.throughput(Throughput::Elements(reads));
        group.bench_with_input(
            BenchmarkId::new("incast", format!("{label}_{reads}_reads")),
            &spec,
            |b, spec| b.iter(|| black_box(spec.run(2018).expect("scenario runs"))),
        );
    }
    group.finish();
}

fn bench_synthetic_relay(c: &mut Criterion) {
    const TOTAL: u64 = 100_000;
    let mut group = c.benchmark_group("engine/synthetic_relay_100k_events");
    group.throughput(Throughput::Elements(TOTAL));
    for shards in [1u32, 2, 4] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &shards| {
            b.iter(|| black_box(run_relay(shards, TOTAL)))
        });
    }
    group.finish();
}

fn bench_threads_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/threads_sweep");
    for spec in [ScenarioSpec::datacenter(), ScenarioSpec::datacenter_64()] {
        let events = spec.run(2018).expect("scenario runs").events;
        group.throughput(Throughput::Elements(events));
        for threads in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(&spec.name, format!("{events}_events_threads_{threads}")),
                &spec,
                |b, spec| {
                    b.iter(|| {
                        black_box(spec.run_with_threads(2018, threads).expect("scenario runs"))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scenario_replay,
    bench_system_build,
    bench_scenario_sharding,
    bench_data_path,
    bench_synthetic_relay,
    bench_threads_sweep
);
criterion_main!(benches);
