//! Criterion bench for the Figures 12/13 substrate: FCFS packing of Table I
//! workloads onto both datacenter models and the full six-configuration
//! study.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use dredbox::sim::rng::SimRng;
use dredbox::sim::units::ByteSize;
use dredbox::tco::{ConventionalDatacenter, DisaggregatedDatacenter, TcoStudy};
use dredbox::workload::WorkloadConfig;

fn bench_packing(c: &mut Criterion) {
    let conventional = ConventionalDatacenter::new(64, 32, ByteSize::from_gib(32));
    let disaggregated = DisaggregatedDatacenter::new(64, 32, 64, ByteSize::from_gib(32));
    let mut group = c.benchmark_group("tco/pack_64_vms");
    for config in [
        WorkloadConfig::Random,
        WorkloadConfig::HighRam,
        WorkloadConfig::HighCpu,
    ] {
        let workload = config.generate(64, &mut SimRng::seed(2018));
        group.bench_with_input(
            BenchmarkId::new("conventional", config.name()),
            &workload,
            |b, w| b.iter(|| conventional.pack_fcfs(black_box(w))),
        );
        group.bench_with_input(
            BenchmarkId::new("disaggregated", config.name()),
            &workload,
            |b, w| b.iter(|| disaggregated.pack_fcfs(black_box(w))),
        );
    }
    group.finish();
}

fn bench_full_study(c: &mut Criterion) {
    let study = TcoStudy::paper_setup();
    c.bench_function("tco/full_study_all_configs", |b| {
        b.iter_batched(
            || SimRng::seed(2018),
            |mut rng| study.run_all(&mut rng),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_packing, bench_full_study);
criterion_main!(benches);
