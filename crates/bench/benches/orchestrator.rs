//! Criterion bench for the SDM control-plane hot path: mixed
//! allocate/release/power traces driven through the controller at 16 / 64 /
//! 256 compute bricks, comparing the incrementally maintained capacity
//! indexes (`allocate_vm`, indexed pool selection) against the reference
//! rack-wide scan (`allocate_vm_scan`, candidate-list pool scan) the
//! indexes replaced. A second group isolates the placement decision itself
//! (`choose_indexed` vs the slice scan) per policy, a third drives a
//! migration-heavy 2k-op trace (admit / migrate / release / power) so the
//! cost of the reserve → re-route → drain → switchover flow is tracked per
//! rack size in `BENCH_orchestrator.json`, and a fourth drives an
//! offload-heavy 2k-op trace (admit / offload begin+end / release / power)
//! so the dACCELBRICK session flow — `AccelIndex` placement, ledger holds,
//! circuit setup and teardown — is tracked the same way.
//!
//! Two further groups sweep the *rack count* (1 / 4 / 16 / 64) at a fixed
//! per-rack shape: one isolates the cluster controller's digest-only
//! routing decision, the other drives a routed admit/release trace through
//! a whole federated [`DredboxSystem`]. Together they hold the two-level
//! headline to account — per-decision cost must grow no worse than
//! logarithmically in racks, never linearly in bricks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use dredbox::bricks::{Bitstream, BrickId, RackId};
use dredbox::interconnect::LatencyConfig;
use dredbox::memory::{AllocationPolicy, PickStrategy};
use dredbox::orchestrator::prelude::*;
use dredbox::sim::rng::SimRng;
use dredbox::sim::units::{Bandwidth, ByteSize};
use dredbox::{DredboxSystem, SystemConfig};

/// One step of the mixed control-plane trace.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Admit a VM (vcpus, GiB of pooled memory).
    Alloc(u32, u64),
    /// Release the n-th live VM (cores and memory).
    Release(usize),
    /// Flip a brick's power view.
    Power(u32, bool),
    /// Migrate the n-th live VM to the brick offset by the second value.
    Migrate(usize, u32),
    /// Begin an offload of the n-th kernel from the brick's compute side.
    OffloadBegin(u32, u8),
    /// End the n-th live offload session.
    OffloadEnd(usize),
}

/// A deterministic mixed trace: ~55% allocations, ~35% releases, ~10%
/// power flips — enough churn that the availability view never goes stale.
fn trace(ops: usize, bricks: u32) -> Vec<Op> {
    let mut rng = SimRng::seed(2018);
    (0..ops)
        .map(|_| {
            let roll = rng.range(0u64..100);
            if roll < 55 {
                Op::Alloc(rng.range(1u64..=8) as u32, rng.range(1u64..=2))
            } else if roll < 90 {
                Op::Release(rng.range(0u64..1_000) as usize)
            } else {
                Op::Power(rng.range(0u64..u64::from(bricks)) as u32, rng.chance(0.5))
            }
        })
        .collect()
}

/// A deterministic migration-heavy trace: ~40% allocations, ~30%
/// migrations, ~25% releases, ~5% power flips — every fourth op walks the
/// full reserve → re-route → drain → switchover flow.
fn migration_trace(ops: usize, bricks: u32) -> Vec<Op> {
    let mut rng = SimRng::seed(2018);
    (0..ops)
        .map(|_| {
            let roll = rng.range(0u64..100);
            if roll < 40 {
                Op::Alloc(rng.range(1u64..=8) as u32, rng.range(1u64..=2))
            } else if roll < 70 {
                Op::Migrate(
                    rng.range(0u64..1_000) as usize,
                    rng.range(1u64..u64::from(bricks)) as u32,
                )
            } else if roll < 95 {
                Op::Release(rng.range(0u64..1_000) as usize)
            } else {
                Op::Power(rng.range(0u64..u64::from(bricks)) as u32, rng.chance(0.5))
            }
        })
        .collect()
}

/// A deterministic offload-heavy trace: ~30% allocations, ~30% offload
/// begins (four kernels rotating, so reuse and reprogramming both occur),
/// ~20% offload ends, ~15% releases, ~5% power flips — every third op walks
/// the accelerator placement → ledger hold → circuit flow.
fn offload_trace(ops: usize, bricks: u32) -> Vec<Op> {
    let mut rng = SimRng::seed(2018);
    (0..ops)
        .map(|_| {
            let roll = rng.range(0u64..100);
            if roll < 30 {
                Op::Alloc(rng.range(1u64..=8) as u32, rng.range(1u64..=2))
            } else if roll < 60 {
                Op::OffloadBegin(
                    rng.range(0u64..u64::from(bricks)) as u32,
                    rng.range(0u64..4) as u8,
                )
            } else if roll < 80 {
                Op::OffloadEnd(rng.range(0u64..1_000) as usize)
            } else if roll < 95 {
                Op::Release(rng.range(0u64..1_000) as usize)
            } else {
                Op::Power(rng.range(0u64..u64::from(bricks)) as u32, rng.chance(0.5))
            }
        })
        .collect()
}

/// A rack with `bricks` 32-core dCOMPUBRICKs and `bricks / 4` 32-GiB
/// dMEMBRICKs, under the dReDBox default power-aware policies.
fn controller(bricks: u32, strategy: PickStrategy) -> SdmController {
    let mut sdm = SdmController::new(
        AllocationPolicy::PowerAware,
        PlacementPolicy::PowerAware,
        SdmTimings::dredbox_default(),
        LatencyConfig::dredbox_default(),
    );
    sdm.set_memory_pick_strategy(strategy);
    for b in 0..bricks {
        sdm.register_compute_brick(BrickId(b), 32, 8);
    }
    for m in 0..bricks / 4 {
        sdm.register_membrick(BrickId(10_000 + m), ByteSize::from_gib(32));
    }
    sdm
}

/// The same rack plus `bricks / 8` (min 1) dACCELBRICKs with 4 streaming
/// slots each, as the offload-heavy trace needs.
fn accel_controller(bricks: u32, strategy: PickStrategy) -> SdmController {
    let mut sdm = controller(bricks, strategy);
    for a in 0..(bricks / 8).max(1) {
        sdm.register_accel_brick(BrickId(20_000 + a), Bandwidth::from_gbps(3.2), 4);
    }
    sdm
}

/// Replays the trace through one controller. `scan` selects the reference
/// rack-wide-scan admission path; the indexed path otherwise.
fn run_trace(sdm: &mut SdmController, ops: &[Op], scan: bool) -> usize {
    let mut live: Vec<(BrickId, u32, ScaleUpGrant)> = Vec::new();
    let mut sessions: Vec<OffloadSessionId> = Vec::new();
    let mut admitted = 0usize;
    for op in ops {
        match *op {
            Op::Alloc(vcpus, gib) => {
                let request = VmAllocationRequest::new(vcpus, ByteSize::from_gib(gib));
                let outcome = if scan {
                    sdm.allocate_vm_scan(request)
                } else {
                    sdm.allocate_vm(request)
                };
                if let Ok((brick, grant)) = outcome {
                    live.push((brick, vcpus, grant));
                    admitted += 1;
                }
            }
            Op::Release(pick) => {
                if live.is_empty() {
                    continue;
                }
                let (brick, vcpus, grant) = live.swap_remove(pick % live.len());
                sdm.release_vm(brick, vcpus).expect("live VM releases");
                sdm.release_scale_up(&grant).expect("live grant releases");
            }
            Op::Power(brick, on) => {
                let _ = sdm.set_compute_power(BrickId(brick), on);
            }
            Op::Migrate(pick, offset) => {
                if live.is_empty() {
                    continue;
                }
                let slot = pick % live.len();
                let (from, vcpus, grant) = live[slot].clone();
                let bricks = sdm.compute_brick_count() as u32;
                let to = BrickId((from.0 + offset) % bricks);
                if let Ok(outcome) = sdm.migrate_vm(from, to, vcpus, &[grant]) {
                    let rebased = outcome
                        .rebased
                        .into_iter()
                        .next()
                        .expect("one grant in, one grant out");
                    live[slot] = (to, vcpus, rebased);
                }
            }
            Op::OffloadBegin(brick, kernel) => {
                let request = OffloadRequest::new(
                    BrickId(brick),
                    Bitstream::new(format!("kernel-{kernel}"), ByteSize::from_mib(8)),
                    ByteSize::from_gib(1),
                );
                if let Ok(grant) = sdm.begin_offload(request) {
                    sessions.push(grant.session.id);
                }
            }
            Op::OffloadEnd(pick) => {
                if sessions.is_empty() {
                    continue;
                }
                let session = sessions.swap_remove(pick % sessions.len());
                sdm.end_offload(session).expect("live session ends");
            }
        }
    }
    admitted
}

fn bench_control_plane(c: &mut Criterion) {
    const OPS: usize = 2_000;
    let mut group = c.benchmark_group("orchestrator/mixed_trace_2k_ops");
    // 16/64/256 span the prototype-to-rack range; 1024 shows the asymptote
    // as the scan term takes over the reference path completely.
    for bricks in [16u32, 64, 256, 1024] {
        let ops = trace(OPS, bricks);
        group.bench_with_input(
            BenchmarkId::new("indexed", bricks),
            &bricks,
            |b, &bricks| {
                b.iter_batched(
                    || controller(bricks, PickStrategy::Indexed),
                    |mut sdm| black_box(run_trace(&mut sdm, &ops, false)),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference_scan", bricks),
            &bricks,
            |b, &bricks| {
                b.iter_batched(
                    || controller(bricks, PickStrategy::ReferenceScan),
                    |mut sdm| black_box(run_trace(&mut sdm, &ops, true)),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_migration_trace(c: &mut Criterion) {
    const OPS: usize = 2_000;
    let mut group = c.benchmark_group("orchestrator/migration_trace_2k_ops");
    for bricks in [16u32, 64, 256, 1024] {
        let ops = migration_trace(OPS, bricks);
        group.bench_with_input(
            BenchmarkId::new("indexed", bricks),
            &bricks,
            |b, &bricks| {
                b.iter_batched(
                    || controller(bricks, PickStrategy::Indexed),
                    |mut sdm| black_box(run_trace(&mut sdm, &ops, false)),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_offload_trace(c: &mut Criterion) {
    const OPS: usize = 2_000;
    let mut group = c.benchmark_group("orchestrator/offload_trace_2k_ops");
    for bricks in [16u32, 64, 256, 1024] {
        let ops = offload_trace(OPS, bricks);
        group.bench_with_input(
            BenchmarkId::new("indexed", bricks),
            &bricks,
            |b, &bricks| {
                b.iter_batched(
                    || accel_controller(bricks, PickStrategy::Indexed),
                    |mut sdm| black_box(run_trace(&mut sdm, &ops, false)),
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_placement_decision(c: &mut Criterion) {
    const BRICKS: u32 = 256;
    // A half-loaded rack: varied free cores, some idle, some asleep.
    let mut sdm = controller(BRICKS, PickStrategy::Indexed);
    let warmup = trace(2_000, BRICKS);
    run_trace(&mut sdm, &warmup, false);
    let index = sdm.capacity().clone();
    let views = sdm.compute_views();

    let mut group = c.benchmark_group("orchestrator/placement_choose_256_bricks");
    for policy in [
        PlacementPolicy::FirstFit,
        PlacementPolicy::PowerAware,
        PlacementPolicy::Balanced,
    ] {
        group.bench_with_input(
            BenchmarkId::new("indexed", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let mut vcpus = 0u32;
                b.iter(|| {
                    vcpus = vcpus % 8 + 1;
                    black_box(policy.choose_indexed(black_box(&index), vcpus))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference_scan", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                let mut vcpus = 0u32;
                b.iter(|| {
                    vcpus = vcpus % 8 + 1;
                    black_box(policy.choose(black_box(&views), vcpus))
                })
            },
        );
    }
    group.finish();
}

/// A federation of `racks` synthetic digests in the typical steady shape:
/// a constant handful of near-full racks the walk must skip, the rest
/// active with varied headroom — so the sweep measures how the decision
/// itself scales with rack count, not an adversarial all-full fleet.
fn synthetic_cluster(racks: u16) -> ClusterController {
    let mut cluster = ClusterController::new(PlacementPolicy::PowerAware);
    for r in 0..racks {
        let packed = r < 3.min(racks - 1);
        let digest = if packed {
            // Nearly full: too fragmented for any benched request.
            RackDigest {
                free_cores: 8,
                largest_free_cores: 1,
                largest_sleeping_cores: 0,
                free_memory_bytes: ByteSize::from_gib(2).as_bytes(),
                largest_segment_bytes: ByteSize::from_gib(1).as_bytes(),
                idle_accels: 0,
                accel_bricks: 0,
                active_bricks: 16,
                powered_bricks: 16,
                provisioned_milliwatts: 3_000_000,
            }
        } else {
            // Active with headroom, free cores varied so the rank sets
            // hold genuinely distinct keys.
            RackDigest {
                free_cores: 64 + u64::from(r) * 4,
                largest_free_cores: 24,
                largest_sleeping_cores: 32,
                free_memory_bytes: ByteSize::from_gib(128).as_bytes(),
                largest_segment_bytes: ByteSize::from_gib(16).as_bytes(),
                idle_accels: 0,
                accel_bricks: 0,
                active_bricks: 12,
                powered_bricks: 16,
                provisioned_milliwatts: 1_200_000,
            }
        };
        cluster.upsert(RackId(r), digest);
    }
    cluster
}

fn bench_cluster_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator/cluster_route_decision");
    for racks in [1u16, 4, 16, 64] {
        let cluster = synthetic_cluster(racks);
        group.bench_with_input(BenchmarkId::new("racks", racks), &racks, |b, _| {
            let mut vcpus = 0u32;
            b.iter(|| {
                vcpus = vcpus % 16 + 1;
                black_box(cluster.route(black_box(vcpus), ByteSize::from_gib(2)))
            })
        });
    }
    group.finish();
}

/// A deterministic routed admit/release/sweep trace, balanced so the live
/// population random-walks well below single-rack capacity — every rack
/// count then runs the same admission regime and the measured delta is the
/// federation term of the decision, not saturation effects.
fn federated_trace(ops: usize) -> Vec<Op> {
    let mut rng = SimRng::seed(2018);
    (0..ops)
        .map(|_| {
            let roll = rng.range(0u64..100);
            if roll < 45 {
                Op::Alloc(rng.range(1u64..=2) as u32, 1)
            } else if roll < 90 {
                Op::Release(rng.range(0u64..1_000) as usize)
            } else {
                Op::Power(rng.range(0u64..64) as u32, false)
            }
        })
        .collect()
}

/// Replays the federated trace end to end: cluster routing, rack
/// admission, digest refresh; `Power` ops become per-rack power sweeps.
/// Drains every surviving VM at the end so the system returns to an idle
/// steady state and one instance can be replayed repeatedly — keeping the
/// (rack-count-proportional) build and drop of the federation outside the
/// measured region.
fn run_federated_trace(system: &mut DredboxSystem, ops: &[Op]) -> usize {
    let racks = system.rack_count() as u32;
    let mut live = Vec::new();
    let mut admitted = 0usize;
    for op in ops {
        match *op {
            Op::Alloc(vcpus, gib) => {
                if let Ok(outcome) = system.allocate_vm_routed(vcpus, ByteSize::from_gib(gib)) {
                    live.push(outcome.vm);
                    admitted += 1;
                }
            }
            Op::Release(pick) => {
                if live.is_empty() {
                    continue;
                }
                let vm = live.swap_remove(pick % live.len());
                system.release_vm(vm).expect("live VM releases");
            }
            Op::Power(slot, _) => {
                system.power_off_unused_in(RackId((slot % racks) as u16));
            }
            _ => unreachable!("federated trace only emits alloc/release/power"),
        }
    }
    for vm in live.drain(..) {
        system.release_vm(vm).expect("live VM releases");
    }
    admitted
}

fn bench_federated_admission(c: &mut Criterion) {
    const OPS: usize = 2_000;
    let mut group = c.benchmark_group("orchestrator/federated_trace_2k_ops");
    let ops = federated_trace(OPS);
    // Per-rack shape fixed at 2 trays x (4 compute + 4 memory) bricks, so
    // the sweep varies only the rack-count term of each decision.
    for racks in [1u16, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("routed", racks), &racks, |b, &racks| {
            let mut system = DredboxSystem::build(SystemConfig::datacenter_cluster(racks, 2, 4, 4))
                .expect("build federation");
            b.iter(|| black_box(run_federated_trace(&mut system, &ops)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_control_plane,
    bench_migration_trace,
    bench_offload_trace,
    bench_placement_decision,
    bench_cluster_route,
    bench_federated_admission
);
criterion_main!(benches);
