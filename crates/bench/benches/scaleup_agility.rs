//! Criterion bench for the Figure 10 substrate: SDM-controller scale-up
//! handling and the full end-to-end scale-up through the system facade.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use std::hint::black_box;

use dredbox::bricks::BrickId;
use dredbox::orchestrator::{ScaleUpDemand, SdmController};
use dredbox::prelude::*;
use dredbox::sim::units::ByteSize;

fn controller_with(concurrency: usize) -> SdmController {
    let mut sdm = SdmController::dredbox_default();
    for i in 0..concurrency {
        sdm.register_compute_brick(BrickId(i as u32), 32, 8);
        sdm.register_membrick(BrickId(1000 + i as u32), ByteSize::from_gib(32));
    }
    sdm
}

fn bench_sdm_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaleup/sdm_burst");
    for &concurrency in &[8usize, 16, 32] {
        let demands: Vec<ScaleUpDemand> = (0..concurrency)
            .map(|i| ScaleUpDemand::new(BrickId(i as u32), ByteSize::from_gib(8)))
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(concurrency),
            &demands,
            |b, demands| {
                b.iter_batched(
                    || controller_with(concurrency),
                    |mut sdm| sdm.scale_up_burst(black_box(demands)),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_system_scale_up(c: &mut Criterion) {
    c.bench_function("scaleup/system_end_to_end", |b| {
        b.iter_batched(
            || {
                let mut system =
                    DredboxSystem::build(SystemConfig::datacenter_rack(2, 4, 4)).expect("build");
                let vm = system.allocate_vm(4, ByteSize::from_gib(4)).expect("vm");
                (system, vm)
            },
            |(mut system, vm)| {
                system
                    .scale_up(vm, black_box(ByteSize::from_gib(8)))
                    .expect("scale up")
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_sdm_burst, bench_system_scale_up);
criterion_main!(benches);
