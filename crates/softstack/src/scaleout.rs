//! The conventional scale-out baseline.
//!
//! Figure 10 compares dReDBox scale-up agility against "elasticity through
//! conventional VM scale-out", i.e. spawning additional VMs to give an
//! application more aggregate memory. The dominant cost there is VM startup
//! time, which the paper's reference [13] (Mao & Humphrey, IEEE CLOUD 2012)
//! measured at roughly 45–100 s on public clouds depending on provider,
//! image size and instance type.

use serde::{Deserialize, Serialize};

use dredbox_sim::queue::ControlPlaneQueue;
use dredbox_sim::rng::SimRng;
use dredbox_sim::time::{SimDuration, SimTime};

/// Model of how long spawning one additional VM takes in a conventional
/// cloud, plus the per-request overhead the cloud control plane adds when
/// many requests land at once.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleOutBaseline {
    /// Mean VM startup time.
    pub mean_startup: SimDuration,
    /// Standard deviation of the startup time.
    pub startup_std_dev: SimDuration,
    /// Minimum startup time (clamp for the sampled distribution).
    pub min_startup: SimDuration,
    /// Control-plane serialization cost per queued concurrent request
    /// (image-store and scheduler contention).
    pub per_concurrent_penalty: SimDuration,
}

impl ScaleOutBaseline {
    /// Defaults following the Mao & Humphrey measurements: 95 s mean,
    /// 20 s standard deviation, at least 40 s, and a modest 1.5 s additional
    /// queueing per concurrent request at the cloud controller.
    pub fn mao_humphrey_default() -> Self {
        ScaleOutBaseline {
            mean_startup: SimDuration::from_secs(95),
            startup_std_dev: SimDuration::from_secs(20),
            min_startup: SimDuration::from_secs(40),
            per_concurrent_penalty: SimDuration::from_millis(1_500),
        }
    }

    /// Samples the provisioning delay experienced by one of `concurrency`
    /// VMs that all request scale-out at the same time.
    pub fn provision_delay(&self, concurrency: usize, rng: &mut SimRng) -> SimDuration {
        let startup = rng.normal(
            self.mean_startup.as_secs_f64(),
            self.startup_std_dev.as_secs_f64(),
        );
        let startup = startup.max(self.min_startup.as_secs_f64());
        // Each request also waits, on average, for half of its peers at the
        // control plane before being admitted.
        let queueing = self.per_concurrent_penalty.as_secs_f64()
            * (concurrency.saturating_sub(1) as f64)
            / 2.0;
        SimDuration::from_secs_f64(startup + queueing)
    }

    /// The exact FIFO realization of one burst of `concurrency` simultaneous
    /// scale-out requests: each request queues for a
    /// [`ControlPlaneQueue`]-serialized control-plane admission slot of
    /// [`ScaleOutBaseline::per_concurrent_penalty`] (image-store and
    /// scheduler contention), then its sampled VM startup runs in parallel
    /// with its peers'. [`ScaleOutBaseline::provision_delay`] is the
    /// closed-form average of this realization.
    ///
    /// Returns the per-request end-to-end delays, in admission order.
    pub fn provision_burst(&self, concurrency: usize, rng: &mut SimRng) -> Vec<SimDuration> {
        let mut queue = ControlPlaneQueue::new(SimDuration::ZERO);
        (0..concurrency)
            .map(|_| {
                let admission = queue.admit(SimTime::ZERO, self.per_concurrent_penalty);
                let startup = rng
                    .normal(
                        self.mean_startup.as_secs_f64(),
                        self.startup_std_dev.as_secs_f64(),
                    )
                    .max(self.min_startup.as_secs_f64());
                admission.queue_wait + SimDuration::from_secs_f64(startup)
            })
            .collect()
    }

    /// Average provisioning delay over a burst of `concurrency` simultaneous
    /// requests.
    pub fn average_delay(
        &self,
        concurrency: usize,
        samples: usize,
        rng: &mut SimRng,
    ) -> SimDuration {
        assert!(samples > 0, "need at least one sample");
        let total: f64 = (0..samples)
            .map(|_| self.provision_delay(concurrency, rng).as_secs_f64())
            .sum();
        SimDuration::from_secs_f64(total / samples as f64)
    }
}

impl Default for ScaleOutBaseline {
    fn default() -> Self {
        ScaleOutBaseline::mao_humphrey_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn startup_times_are_in_the_published_range() {
        let model = ScaleOutBaseline::mao_humphrey_default();
        let mut rng = SimRng::seed(1);
        for _ in 0..100 {
            let d = model.provision_delay(1, &mut rng).as_secs_f64();
            assert!(
                (40.0..=200.0).contains(&d),
                "delay {d}s outside plausible range"
            );
        }
    }

    #[test]
    fn concurrency_adds_queueing() {
        let model = ScaleOutBaseline::mao_humphrey_default();
        let lone = model.average_delay(1, 200, &mut SimRng::seed(2));
        let crowded = model.average_delay(32, 200, &mut SimRng::seed(2));
        assert!(crowded > lone);
        // 32-way burst adds ~23 s of average queueing with the default penalty.
        assert!((crowded.as_secs_f64() - lone.as_secs_f64() - 23.25).abs() < 2.0);
    }

    #[test]
    fn scale_out_is_orders_of_magnitude_slower_than_a_second() {
        let model = ScaleOutBaseline::default();
        let avg = model.average_delay(8, 100, &mut SimRng::seed(3));
        assert!(
            avg.as_secs_f64() > 60.0,
            "scale-out must be tens of seconds, got {avg}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_samples_rejected() {
        let _ = ScaleOutBaseline::default().average_delay(1, 0, &mut SimRng::seed(0));
    }

    #[test]
    fn burst_realization_queues_each_request_behind_its_peers() {
        let model = ScaleOutBaseline::mao_humphrey_default();
        let delays = model.provision_burst(8, &mut SimRng::seed(4));
        assert_eq!(delays.len(), 8);
        // Request i waits i control-plane admission slots of 1.5 s each on
        // top of its own (>= 40 s) startup.
        for (i, d) in delays.iter().enumerate() {
            let floor = model.min_startup.as_secs_f64()
                + model.per_concurrent_penalty.as_secs_f64() * i as f64;
            assert!(
                d.as_secs_f64() >= floor,
                "request {i} finished in {d}, below its queueing floor"
            );
        }
        // The realization is deterministic given the seed.
        assert_eq!(delays, model.provision_burst(8, &mut SimRng::seed(4)));
    }
}
