//! Virtual machines hosted on dCOMPUBRICKs.

use serde::{Deserialize, Serialize};

use dredbox_memory::BalloonDevice;
use dredbox_sim::units::ByteSize;

/// Identifier of a virtual machine.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VmId(pub u64);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Resources requested for a VM at creation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VmSpec {
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Initial guest memory.
    pub memory: ByteSize,
}

impl VmSpec {
    /// Creates a spec.
    pub fn new(vcpus: u32, memory: ByteSize) -> Self {
        VmSpec { vcpus, memory }
    }
}

impl std::fmt::Display for VmSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} vcpus + {}", self.vcpus, self.memory)
    }
}

/// Lifecycle state of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmState {
    /// Being provisioned (image copy, boot).
    Provisioning,
    /// Running and able to accept scale-up requests.
    Running,
    /// Shut down; its resources have been released.
    Terminated,
}

/// A virtual machine instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    id: VmId,
    spec: VmSpec,
    state: VmState,
    current_memory: ByteSize,
    balloon: BalloonDevice,
    scale_ups: u32,
    offloads: u32,
}

impl Vm {
    /// Creates a VM in the `Provisioning` state.
    pub fn new(id: VmId, spec: VmSpec) -> Self {
        Vm {
            id,
            spec,
            state: VmState::Provisioning,
            current_memory: spec.memory,
            balloon: BalloonDevice::new(spec.memory),
            scale_ups: 0,
            offloads: 0,
        }
    }

    /// VM identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// The creation-time spec.
    pub fn spec(&self) -> VmSpec {
        self.spec
    }

    /// Lifecycle state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// Memory currently assigned to the guest (initial plus hot-added).
    pub fn current_memory(&self) -> ByteSize {
        self.current_memory
    }

    /// The guest's balloon device.
    pub fn balloon(&self) -> &BalloonDevice {
        &self.balloon
    }

    /// Mutable access to the balloon device.
    pub fn balloon_mut(&mut self) -> &mut BalloonDevice {
        &mut self.balloon
    }

    /// Number of scale-up operations this VM has received.
    pub fn scale_up_count(&self) -> u32 {
        self.scale_ups
    }

    /// Number of near-data offload requests this VM has issued.
    pub fn offload_count(&self) -> u32 {
        self.offloads
    }

    /// Records one issued offload request.
    pub(crate) fn record_offload(&mut self) {
        self.offloads += 1;
    }

    /// Re-numbers the VM under a new hypervisor's id space (migration
    /// adoption); the guest itself is untouched.
    pub(crate) fn renumber(&mut self, id: VmId) {
        self.id = id;
    }

    /// Marks the VM running (boot finished).
    pub fn mark_running(&mut self) {
        self.state = VmState::Running;
    }

    /// Marks the VM terminated.
    pub fn mark_terminated(&mut self) {
        self.state = VmState::Terminated;
    }

    /// Whether the VM is running.
    pub fn is_running(&self) -> bool {
        self.state == VmState::Running
    }

    /// Records a hot-added DIMM of `amount` bytes.
    pub(crate) fn grow_memory(&mut self, amount: ByteSize) {
        self.current_memory += amount;
        self.balloon.grow_guest_memory(amount);
        self.scale_ups += 1;
    }

    /// Records a hot-removed amount of memory.
    pub(crate) fn shrink_memory(&mut self, amount: ByteSize) {
        self.current_memory = self.current_memory.saturating_sub(amount);
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_newtype!(VmId(u64));
dredbox_snap::snap_struct!(VmSpec { vcpus, memory });
dredbox_snap::snap_unit_enum!(VmState {
    Provisioning = 0,
    Running = 1,
    Terminated = 2,
});
dredbox_snap::snap_struct!(Vm {
    id,
    spec,
    state,
    current_memory,
    balloon,
    scale_ups,
    offloads,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_display() {
        let spec = VmSpec::new(4, ByteSize::from_gib(8));
        assert_eq!(spec.to_string(), "4 vcpus + 8.00 GiB");
        let mut vm = Vm::new(VmId(7), spec);
        assert_eq!(vm.id().to_string(), "vm7");
        assert_eq!(vm.state(), VmState::Provisioning);
        assert!(!vm.is_running());
        vm.mark_running();
        assert!(vm.is_running());
        vm.mark_terminated();
        assert_eq!(vm.state(), VmState::Terminated);
    }

    #[test]
    fn memory_growth_tracks_balloon_and_counter() {
        let mut vm = Vm::new(VmId(1), VmSpec::new(2, ByteSize::from_gib(4)));
        assert_eq!(vm.current_memory(), ByteSize::from_gib(4));
        assert_eq!(vm.scale_up_count(), 0);
        vm.grow_memory(ByteSize::from_gib(8));
        assert_eq!(vm.current_memory(), ByteSize::from_gib(12));
        assert_eq!(vm.balloon().guest_memory(), ByteSize::from_gib(12));
        assert_eq!(vm.scale_up_count(), 1);
        vm.shrink_memory(ByteSize::from_gib(2));
        assert_eq!(vm.current_memory(), ByteSize::from_gib(10));
        vm.balloon_mut().inflate(ByteSize::from_gib(1)).unwrap();
        assert_eq!(vm.balloon().inflated(), ByteSize::from_gib(1));
    }
}
