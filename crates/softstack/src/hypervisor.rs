//! The virtualization layer: a Type-1 hypervisor with memory hotplug.
//!
//! Section IV-B: the QEMU hypervisor gains a memory-hotplug support scheme
//! that adds new RAM DIMMs at runtime and makes them available to the guest
//! OS, which then onlines them with the baremetal hotplug path. Scale-up
//! support lets applications inside a VM request the expansion of available
//! system memory.

use serde::{Deserialize, Serialize};

use dredbox_bricks::BrickId;
use dredbox_memory::HotplugModel;
use dredbox_sim::arena::{SlotArena, SlotKey};
use dredbox_sim::time::SimDuration;
use dredbox_sim::units::ByteSize;

use crate::baremetal::BaremetalOs;
use crate::error::SoftstackError;
use crate::vm::{Vm, VmId, VmSpec};

/// The hypervisor instance running on one dCOMPUBRICK.
///
/// ```
/// use dredbox_softstack::prelude::*;
/// use dredbox_bricks::BrickId;
/// use dredbox_memory::HotplugModel;
/// use dredbox_sim::units::ByteSize;
///
/// let os = BaremetalOs::new(BrickId(0), ByteSize::from_gib(4), HotplugModel::dredbox_default());
/// let mut hv = Hypervisor::new(os, 4);
/// let (vm, boot) = hv.create_vm(VmSpec::new(2, ByteSize::from_gib(2)))?;
/// assert!(boot.as_secs_f64() > 0.0);
/// assert!(hv.vm(vm).unwrap().is_running());
/// # Ok::<(), dredbox_softstack::SoftstackError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypervisor {
    os: BaremetalOs,
    total_cores: u32,
    allocated_cores: u32,
    /// Sum of every live VM's current memory, maintained incrementally so
    /// the admission checks on [`Hypervisor::free_memory`] stop re-summing
    /// the arena — under packing placement one brick hosts many VMs, and
    /// that sum sat on the scenario engine's per-event hot path.
    committed_memory: ByteSize,
    /// Live VMs interned in a generational slab arena: a [`VmId`] is the
    /// packed slot key, so lookups are a bounds check plus a generation
    /// compare, destroyed ids keep missing even after their slot is
    /// recycled, and admit/destroy churn stops allocating map nodes.
    vms: SlotArena<Vm>,
    /// Fixed QEMU `device_add pc-dimm` + ACPI/DT notification cost per DIMM.
    dimm_attach_overhead: SimDuration,
    /// Local boot time of a minimal guest image on the brick.
    guest_boot_time: SimDuration,
}

/// The arena key a [`VmId`] packs.
fn vm_key(vm: VmId) -> SlotKey {
    SlotKey::from_u64(vm.0)
}

impl Hypervisor {
    /// Creates a hypervisor over the given baremetal OS and core count.
    pub fn new(os: BaremetalOs, total_cores: u32) -> Self {
        Hypervisor {
            os,
            total_cores,
            allocated_cores: 0,
            committed_memory: ByteSize::ZERO,
            vms: SlotArena::new(),
            dimm_attach_overhead: SimDuration::from_millis(60),
            guest_boot_time: SimDuration::from_secs(8),
        }
    }

    /// The brick this hypervisor runs on.
    pub fn brick(&self) -> BrickId {
        self.os.brick()
    }

    /// The underlying baremetal OS.
    pub fn os(&self) -> &BaremetalOs {
        &self.os
    }

    /// Mutable access to the baremetal OS (used by the SDM agent when it
    /// attaches remote memory below the hypervisor).
    pub fn os_mut(&mut self) -> &mut BaremetalOs {
        &mut self.os
    }

    /// Total schedulable cores.
    pub fn total_cores(&self) -> u32 {
        self.total_cores
    }

    /// Cores not yet given to VMs.
    pub fn free_cores(&self) -> u32 {
        self.total_cores - self.allocated_cores
    }

    /// Memory visible to the hypervisor but not yet given to any VM.
    pub fn free_memory(&self) -> ByteSize {
        self.os.total_memory().saturating_sub(self.committed_memory)
    }

    /// Number of live VMs. Destroyed VMs are removed from the hypervisor's
    /// tables entirely, so every VM in the arena counts.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Looks up a VM.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(vm_key(id))
    }

    /// Iterates over all VMs.
    pub fn vms(&self) -> impl Iterator<Item = &Vm> {
        self.vms.values()
    }

    /// The guest boot time used by [`Hypervisor::create_vm`].
    pub fn guest_boot_time(&self) -> SimDuration {
        self.guest_boot_time
    }

    /// Creates and boots a VM, returning its id and the provisioning time.
    ///
    /// # Errors
    ///
    /// * [`SoftstackError::InsufficientCores`] if the brick lacks vCPUs.
    /// * [`SoftstackError::InsufficientMemory`] if the brick lacks memory
    ///   (local plus currently attached remote).
    pub fn create_vm(&mut self, spec: VmSpec) -> Result<(VmId, SimDuration), SoftstackError> {
        if spec.vcpus > self.free_cores() {
            return Err(SoftstackError::InsufficientCores {
                brick: self.brick(),
                requested: spec.vcpus,
                available: self.free_cores(),
            });
        }
        if spec.memory > self.free_memory() {
            return Err(SoftstackError::InsufficientMemory {
                brick: self.brick(),
                requested: spec.memory,
                available: self.free_memory(),
            });
        }
        let key = self.vms.insert_with(|key| {
            let mut vm = Vm::new(VmId(key.to_u64()), spec);
            vm.mark_running();
            vm
        });
        self.allocated_cores += spec.vcpus;
        self.committed_memory += spec.memory;
        Ok((VmId(key.to_u64()), self.guest_boot_time))
    }

    /// Hot-adds a RAM DIMM of `amount` to a running VM, returning the time
    /// it takes (QEMU device_add plus the guest kernel onlining the blocks).
    ///
    /// The memory must already be visible to the hypervisor — i.e. the
    /// baremetal OS must have onlined the corresponding remote attachment
    /// first.
    ///
    /// # Errors
    ///
    /// * [`SoftstackError::NoSuchVm`] / [`SoftstackError::VmNotRunning`].
    /// * [`SoftstackError::InsufficientMemory`] if the hypervisor has not
    ///   been given that much spare memory.
    pub fn hot_add_dimm(
        &mut self,
        vm: VmId,
        amount: ByteSize,
    ) -> Result<SimDuration, SoftstackError> {
        if amount > self.free_memory() {
            return Err(SoftstackError::InsufficientMemory {
                brick: self.brick(),
                requested: amount,
                available: self.free_memory(),
            });
        }
        let guest_hotplug: HotplugModel = *self.os.hotplug_model();
        let vm_ref = self
            .vms
            .get_mut(vm_key(vm))
            .ok_or(SoftstackError::NoSuchVm { vm })?;
        if !vm_ref.is_running() {
            return Err(SoftstackError::VmNotRunning { vm });
        }
        vm_ref.grow_memory(amount);
        self.committed_memory += amount;
        // QEMU device_add + guest kernel onlining of the new blocks.
        Ok(self.dimm_attach_overhead + guest_hotplug.online_time(amount))
    }

    /// Hot-removes `amount` of memory from a running VM (balloon-assisted),
    /// returning the time it takes.
    ///
    /// # Errors
    ///
    /// * [`SoftstackError::NoSuchVm`] / [`SoftstackError::VmNotRunning`].
    /// * [`SoftstackError::DetachUnderflow`] if the VM does not hold that
    ///   much hot-added memory.
    pub fn hot_remove(
        &mut self,
        vm: VmId,
        amount: ByteSize,
    ) -> Result<SimDuration, SoftstackError> {
        let guest_hotplug: HotplugModel = *self.os.hotplug_model();
        let vm_ref = self
            .vms
            .get_mut(vm_key(vm))
            .ok_or(SoftstackError::NoSuchVm { vm })?;
        if !vm_ref.is_running() {
            return Err(SoftstackError::VmNotRunning { vm });
        }
        if amount > vm_ref.current_memory() {
            return Err(SoftstackError::DetachUnderflow { vm });
        }
        vm_ref.shrink_memory(amount);
        self.committed_memory = self.committed_memory.saturating_sub(amount);
        Ok(self.dimm_attach_overhead + guest_hotplug.offline_time(amount))
    }

    /// Records that a running VM issued a near-data offload request (the
    /// dACCELBRICK demand the SDM controller turns into a session),
    /// returning the VM's updated offload count.
    ///
    /// # Errors
    ///
    /// * [`SoftstackError::NoSuchVm`] / [`SoftstackError::VmNotRunning`].
    pub fn issue_offload(&mut self, vm: VmId) -> Result<u32, SoftstackError> {
        let vm_ref = self
            .vms
            .get_mut(vm_key(vm))
            .ok_or(SoftstackError::NoSuchVm { vm })?;
        if !vm_ref.is_running() {
            return Err(SoftstackError::VmNotRunning { vm });
        }
        vm_ref.record_offload();
        Ok(vm_ref.offload_count())
    }

    /// Removes a live VM from this hypervisor without terminating it — the
    /// source half of a migration. The VM keeps its state and memory
    /// footprint; its cores return to this brick. The caller is expected to
    /// [`Hypervisor::adopt_vm`] it elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`SoftstackError::NoSuchVm`] for unknown VMs.
    pub fn evict_vm(&mut self, vm: VmId) -> Result<Vm, SoftstackError> {
        let vm_ref = self
            .vms
            .remove(vm_key(vm))
            .ok_or(SoftstackError::NoSuchVm { vm })?;
        self.allocated_cores -= vm_ref.spec().vcpus;
        self.committed_memory = self
            .committed_memory
            .saturating_sub(vm_ref.current_memory());
        Ok(vm_ref)
    }

    /// Adopts a VM evicted from another hypervisor — the destination half
    /// of a migration. The VM is re-numbered into this hypervisor's id
    /// space and keeps running; its current (possibly scaled-up) memory
    /// must already be visible to this brick (the SDM agent re-attaches the
    /// remote segments before the switchover).
    ///
    /// # Errors
    ///
    /// * [`SoftstackError::InsufficientCores`] if this brick lacks vCPUs.
    /// * [`SoftstackError::InsufficientMemory`] if the brick lacks memory
    ///   for the VM's current footprint. On failure the VM is dropped, so
    ///   callers must validate capacity (or clone) before evicting from the
    ///   source.
    pub fn adopt_vm(&mut self, mut vm: Vm) -> Result<VmId, SoftstackError> {
        let vcpus = vm.spec().vcpus;
        if vcpus > self.free_cores() {
            return Err(SoftstackError::InsufficientCores {
                brick: self.brick(),
                requested: vcpus,
                available: self.free_cores(),
            });
        }
        if vm.current_memory() > self.free_memory() {
            return Err(SoftstackError::InsufficientMemory {
                brick: self.brick(),
                requested: vm.current_memory(),
                available: self.free_memory(),
            });
        }
        let adopted_memory = vm.current_memory();
        let key = self.vms.insert_with(|key| {
            vm.renumber(VmId(key.to_u64()));
            vm
        });
        self.allocated_cores += vcpus;
        self.committed_memory += adopted_memory;
        Ok(VmId(key.to_u64()))
    }

    /// Terminates a VM, releasing its cores and memory and dropping it from
    /// the hypervisor's tables — long create/destroy churn must not grow
    /// them without bound.
    ///
    /// # Errors
    ///
    /// Returns [`SoftstackError::NoSuchVm`] for unknown VMs.
    pub fn destroy_vm(&mut self, vm: VmId) -> Result<(), SoftstackError> {
        let vm_ref = self
            .vms
            .remove(vm_key(vm))
            .ok_or(SoftstackError::NoSuchVm { vm })?;
        // Every VM in the map holds its spec'd cores (create_vm marks it
        // running on insert), so the release is unconditional.
        self.allocated_cores -= vm_ref.spec().vcpus;
        self.committed_memory = self
            .committed_memory
            .saturating_sub(vm_ref.current_memory());
        Ok(())
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(Hypervisor {
    os,
    total_cores,
    allocated_cores,
    committed_memory,
    vms,
    dimm_attach_overhead,
    guest_boot_time,
});

#[cfg(test)]
mod tests {
    use super::*;
    use dredbox_memory::HotplugModel;

    fn hypervisor() -> Hypervisor {
        let os = BaremetalOs::new(
            BrickId(0),
            ByteSize::from_gib(4),
            HotplugModel::dredbox_default(),
        );
        Hypervisor::new(os, 4)
    }

    #[test]
    fn create_and_destroy_vms() {
        let mut hv = hypervisor();
        assert_eq!(hv.brick(), BrickId(0));
        assert_eq!(hv.free_cores(), 4);
        let (vm, boot) = hv.create_vm(VmSpec::new(2, ByteSize::from_gib(2))).unwrap();
        assert_eq!(boot, hv.guest_boot_time());
        assert_eq!(hv.vm_count(), 1);
        assert_eq!(hv.free_cores(), 2);
        assert_eq!(hv.free_memory(), ByteSize::from_gib(2));
        assert_eq!(hv.vms().count(), 1);

        // Too many cores.
        assert!(matches!(
            hv.create_vm(VmSpec::new(8, ByteSize::from_gib(1))),
            Err(SoftstackError::InsufficientCores { .. })
        ));
        // Too much memory.
        assert!(matches!(
            hv.create_vm(VmSpec::new(1, ByteSize::from_gib(8))),
            Err(SoftstackError::InsufficientMemory { .. })
        ));

        hv.destroy_vm(vm).unwrap();
        assert_eq!(hv.vm_count(), 0);
        assert_eq!(hv.free_cores(), 4);
        // Terminated VMs must give their memory back: repeated
        // create/destroy cycles cannot shrink the free pool.
        assert_eq!(hv.free_memory(), ByteSize::from_gib(4));
        for _ in 0..3 {
            let (vm, _) = hv.create_vm(VmSpec::new(2, ByteSize::from_gib(3))).unwrap();
            hv.destroy_vm(vm).unwrap();
        }
        assert_eq!(hv.free_memory(), ByteSize::from_gib(4));
        assert!(matches!(
            hv.destroy_vm(VmId(99)),
            Err(SoftstackError::NoSuchVm { .. })
        ));
    }

    #[test]
    fn evict_and_adopt_move_a_running_vm() {
        let mut src = hypervisor();
        let mut dst = hypervisor();
        let (vm, _) = src
            .create_vm(VmSpec::new(2, ByteSize::from_gib(2)))
            .unwrap();
        src.os_mut().online_remote(ByteSize::from_gib(4));
        src.hot_add_dimm(vm, ByteSize::from_gib(4)).unwrap();

        let evicted = src.evict_vm(vm).unwrap();
        assert_eq!(src.vm_count(), 0);
        assert_eq!(src.free_cores(), 4);
        assert_eq!(evicted.current_memory(), ByteSize::from_gib(6));
        assert!(matches!(
            src.evict_vm(vm),
            Err(SoftstackError::NoSuchVm { .. })
        ));

        // The destination must see the VM's memory before the switchover —
        // 6 GiB against 4 GiB of local memory needs the remote attach first.
        assert!(matches!(
            dst.adopt_vm(evicted.clone()),
            Err(SoftstackError::InsufficientMemory { .. })
        ));
        dst.os_mut().online_remote(ByteSize::from_gib(6));
        let new_id = dst.adopt_vm(evicted).unwrap();
        assert_eq!(dst.vm_count(), 1);
        assert_eq!(dst.free_cores(), 2);
        let adopted = dst.vm(new_id).unwrap();
        assert!(adopted.is_running());
        assert_eq!(adopted.id(), new_id);
        assert_eq!(adopted.current_memory(), ByteSize::from_gib(6));

        // A full destination rejects the cores.
        let mut full = hypervisor();
        full.create_vm(VmSpec::new(4, ByteSize::from_gib(1)))
            .unwrap();
        let straggler = dst.evict_vm(new_id).unwrap();
        assert!(matches!(
            full.adopt_vm(straggler),
            Err(SoftstackError::InsufficientCores { .. })
        ));
    }

    #[test]
    fn scale_up_requires_attached_remote_memory() {
        let mut hv = hypervisor();
        let (vm, _) = hv.create_vm(VmSpec::new(1, ByteSize::from_gib(3))).unwrap();
        // Only 1 GiB of local headroom left; an 8 GiB DIMM needs remote attach first.
        assert!(matches!(
            hv.hot_add_dimm(vm, ByteSize::from_gib(8)),
            Err(SoftstackError::InsufficientMemory { .. })
        ));
        // Baremetal OS onlines 16 GiB of remote memory (the SDM agent's job).
        hv.os_mut().online_remote(ByteSize::from_gib(16));
        let t = hv.hot_add_dimm(vm, ByteSize::from_gib(8)).unwrap();
        assert!(
            t.as_millis_f64() > 100.0 && t.as_secs_f64() < 2.0,
            "dimm add took {t}"
        );
        assert_eq!(hv.vm(vm).unwrap().current_memory(), ByteSize::from_gib(11));
        assert_eq!(hv.vm(vm).unwrap().scale_up_count(), 1);
    }

    #[test]
    fn offload_requests_are_counted_per_running_vm() {
        let mut hv = hypervisor();
        let (vm, _) = hv.create_vm(VmSpec::new(1, ByteSize::from_gib(1))).unwrap();
        assert_eq!(hv.vm(vm).unwrap().offload_count(), 0);
        assert_eq!(hv.issue_offload(vm).unwrap(), 1);
        assert_eq!(hv.issue_offload(vm).unwrap(), 2);
        assert_eq!(hv.vm(vm).unwrap().offload_count(), 2);
        assert!(matches!(
            hv.issue_offload(VmId(99)),
            Err(SoftstackError::NoSuchVm { .. })
        ));
        hv.destroy_vm(vm).unwrap();
        assert!(matches!(
            hv.issue_offload(vm),
            Err(SoftstackError::NoSuchVm { .. })
        ));
    }

    #[test]
    fn hot_remove_and_errors() {
        let mut hv = hypervisor();
        let (vm, _) = hv.create_vm(VmSpec::new(1, ByteSize::from_gib(2))).unwrap();
        hv.os_mut().online_remote(ByteSize::from_gib(8));
        hv.hot_add_dimm(vm, ByteSize::from_gib(4)).unwrap();
        let t = hv.hot_remove(vm, ByteSize::from_gib(2)).unwrap();
        assert!(t.as_millis_f64() > 0.0);
        assert_eq!(hv.vm(vm).unwrap().current_memory(), ByteSize::from_gib(4));
        assert!(matches!(
            hv.hot_remove(vm, ByteSize::from_gib(100)),
            Err(SoftstackError::DetachUnderflow { .. })
        ));
        assert!(matches!(
            hv.hot_add_dimm(VmId(50), ByteSize::from_gib(1)),
            Err(SoftstackError::NoSuchVm { .. })
        ));
        hv.destroy_vm(vm).unwrap();
        assert!(matches!(
            hv.hot_add_dimm(vm, ByteSize::from_gib(1)),
            Err(SoftstackError::NoSuchVm { .. })
        ));
        assert!(matches!(
            hv.hot_remove(vm, ByteSize::from_gib(1)),
            Err(SoftstackError::NoSuchVm { .. })
        ));
    }
}
