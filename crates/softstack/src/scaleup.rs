//! The Scale-up API and its delay components.
//!
//! Section IV: "An appropriately designed Scale-up API triggers the memory
//! attachment process. The application notifies the Scaleup controller which
//! in turn relays the request to the Software Defined Memory (SDM) Controller
//! that manages the remote memory resources. Subsequently, the destination
//! dCOMPUBRICK h/w glue logic is configured and the baremetal OS attaches
//! remote memory and makes it available. Then control is handed back to the
//! Scale-up controller which configures the hypervisor to dynamically expand
//! the physical memory that it provides to the hosted VM."
//!
//! The [`ScaleUpController`] models the compute-brick-local half of that
//! flow; the SDM-controller half (resource selection, reservation, circuit
//! programming) lives in the orchestrator crate, which composes the two into
//! the Figure 10 experiment.

use serde::{Deserialize, Serialize};

use dredbox_sim::time::SimDuration;
use dredbox_sim::units::ByteSize;

use crate::error::SoftstackError;
use crate::hypervisor::Hypervisor;
use crate::vm::VmId;

/// Fixed control-plane latencies of the scale-up flow on the compute brick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleUpTimings {
    /// Application → Scale-up controller notification (in-VM RPC).
    pub app_to_controller: SimDuration,
    /// Scale-up controller → SDM controller request relay (rack network RPC).
    pub controller_to_sdm: SimDuration,
    /// Scale-up controller reconfiguring the hypervisor after the SDM
    /// controller hands control back.
    pub hypervisor_reconfig: SimDuration,
}

impl ScaleUpTimings {
    /// Defaults for the prototype's management network (sub-millisecond
    /// RPCs, a few milliseconds to drive QEMU's QMP interface).
    pub fn dredbox_default() -> Self {
        ScaleUpTimings {
            app_to_controller: SimDuration::from_micros(300),
            controller_to_sdm: SimDuration::from_micros(800),
            hypervisor_reconfig: SimDuration::from_millis(5),
        }
    }

    /// Total fixed control-plane overhead (excluding the SDM controller's
    /// own processing and the hotplug work).
    pub fn fixed_overhead(&self) -> SimDuration {
        self.app_to_controller + self.controller_to_sdm + self.hypervisor_reconfig
    }
}

impl Default for ScaleUpTimings {
    fn default() -> Self {
        ScaleUpTimings::dredbox_default()
    }
}

/// Outcome of one completed scale-up on the compute brick side.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleUpOutcome {
    /// The VM that was grown.
    pub vm: VmId,
    /// The amount of memory added.
    pub amount: ByteSize,
    /// Time spent in the baremetal OS onlining the remote attachment.
    pub baremetal_online: SimDuration,
    /// Time spent hot-adding the DIMM to the guest (QEMU + guest kernel).
    pub guest_hotplug: SimDuration,
    /// Fixed control-plane overhead on the brick.
    pub control_overhead: SimDuration,
}

impl ScaleUpOutcome {
    /// Total brick-local latency of the scale-up.
    pub fn total(&self) -> SimDuration {
        self.baremetal_online + self.guest_hotplug + self.control_overhead
    }
}

/// The per-brick Scale-up controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleUpController {
    timings: ScaleUpTimings,
}

impl ScaleUpController {
    /// Creates a controller with the given fixed timings.
    pub fn new(timings: ScaleUpTimings) -> Self {
        ScaleUpController { timings }
    }

    /// The fixed timings.
    pub fn timings(&self) -> &ScaleUpTimings {
        &self.timings
    }

    /// Executes the compute-brick half of a scale-up: online the newly
    /// attached remote memory in the baremetal OS, then hot-add a DIMM of
    /// the same size to the target VM.
    ///
    /// The caller (the SDM controller in the orchestrator crate) is
    /// responsible for having attached the physical memory first; this
    /// method only accounts the brick-local work and latencies.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor errors (unknown VM, not running, insufficient
    /// attached memory).
    pub fn apply_grant(
        &self,
        hypervisor: &mut Hypervisor,
        vm: VmId,
        amount: ByteSize,
    ) -> Result<ScaleUpOutcome, SoftstackError> {
        let baremetal_online = hypervisor.os_mut().online_remote(amount);
        let guest_hotplug = match hypervisor.hot_add_dimm(vm, amount) {
            Ok(d) => d,
            Err(e) => {
                // Roll the baremetal attach back so accounting stays
                // consistent when the guest-side hotplug is refused.
                let _ = hypervisor.os_mut().offline_remote(amount);
                return Err(e);
            }
        };
        Ok(ScaleUpOutcome {
            vm,
            amount,
            baremetal_online,
            guest_hotplug,
            control_overhead: self.timings.fixed_overhead(),
        })
    }

    /// Executes a scale-down: hot-remove from the guest, then offline the
    /// remote attachment in the baremetal OS.
    ///
    /// # Errors
    ///
    /// Propagates hypervisor and baremetal errors.
    pub fn apply_reclaim(
        &self,
        hypervisor: &mut Hypervisor,
        vm: VmId,
        amount: ByteSize,
    ) -> Result<ScaleUpOutcome, SoftstackError> {
        let guest_hotplug = hypervisor.hot_remove(vm, amount)?;
        let baremetal_online = hypervisor.os_mut().offline_remote(amount)?;
        Ok(ScaleUpOutcome {
            vm,
            amount,
            baremetal_online,
            guest_hotplug,
            control_overhead: self.timings.fixed_overhead(),
        })
    }
}

impl Default for ScaleUpController {
    fn default() -> Self {
        ScaleUpController::new(ScaleUpTimings::dredbox_default())
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(ScaleUpTimings {
    app_to_controller,
    controller_to_sdm,
    hypervisor_reconfig,
});
dredbox_snap::snap_struct!(ScaleUpController { timings });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baremetal::BaremetalOs;
    use crate::vm::VmSpec;
    use dredbox_bricks::BrickId;
    use dredbox_memory::HotplugModel;

    fn setup() -> (Hypervisor, VmId) {
        let os = BaremetalOs::new(
            BrickId(0),
            ByteSize::from_gib(4),
            HotplugModel::dredbox_default(),
        );
        let mut hv = Hypervisor::new(os, 4);
        let (vm, _) = hv.create_vm(VmSpec::new(2, ByteSize::from_gib(2))).unwrap();
        (hv, vm)
    }

    #[test]
    fn grant_flows_through_both_hotplug_layers() {
        let (mut hv, vm) = setup();
        let controller = ScaleUpController::default();
        let outcome = controller
            .apply_grant(&mut hv, vm, ByteSize::from_gib(8))
            .unwrap();
        assert_eq!(outcome.vm, vm);
        assert_eq!(outcome.amount, ByteSize::from_gib(8));
        assert!(outcome.baremetal_online.as_millis_f64() > 0.0);
        assert!(outcome.guest_hotplug.as_millis_f64() > 0.0);
        assert_eq!(
            outcome.control_overhead,
            ScaleUpTimings::dredbox_default().fixed_overhead()
        );
        // Scale-up completes within about a second on the brick — the key
        // property behind Figure 10.
        assert!(
            outcome.total().as_secs_f64() < 1.5,
            "total was {}",
            outcome.total()
        );
        assert_eq!(hv.vm(vm).unwrap().current_memory(), ByteSize::from_gib(10));
        assert_eq!(hv.os().onlined_remote(), ByteSize::from_gib(8));
    }

    #[test]
    fn reclaim_reverses_a_grant() {
        let (mut hv, vm) = setup();
        let controller = ScaleUpController::default();
        controller
            .apply_grant(&mut hv, vm, ByteSize::from_gib(8))
            .unwrap();
        let outcome = controller
            .apply_reclaim(&mut hv, vm, ByteSize::from_gib(8))
            .unwrap();
        assert!(outcome.total() > SimDuration::ZERO);
        assert_eq!(hv.vm(vm).unwrap().current_memory(), ByteSize::from_gib(2));
        assert_eq!(hv.os().onlined_remote(), ByteSize::ZERO);
    }

    #[test]
    fn failed_guest_hotplug_rolls_back_baremetal_attach() {
        let (mut hv, _vm) = setup();
        let controller = ScaleUpController::default();
        let err = controller.apply_grant(&mut hv, VmId(404), ByteSize::from_gib(8));
        assert!(matches!(err, Err(SoftstackError::NoSuchVm { .. })));
        assert_eq!(
            hv.os().onlined_remote(),
            ByteSize::ZERO,
            "baremetal attach must be rolled back"
        );
    }

    #[test]
    fn timings_fixed_overhead_sums_components() {
        let t = ScaleUpTimings::dredbox_default();
        assert_eq!(
            t.fixed_overhead(),
            t.app_to_controller + t.controller_to_sdm + t.hypervisor_reconfig
        );
    }
}
