//! Automatic out-of-memory protection.
//!
//! Section IV-B closes with: "In the future, the guest memory hotplug
//! support will be enhanced to automatically protect the guest from running
//! out-of-memory." This module implements that extension: a per-VM watchdog
//! that watches guest memory pressure and decides when (and by how much) to
//! trigger a scale-up through the Scale-up API, and when to give memory back
//! once pressure subsides.

use serde::{Deserialize, Serialize};

use dredbox_sim::units::ByteSize;

/// What the guard asks the Scale-up controller to do after observing one
/// memory-pressure sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardAction {
    /// No action required: pressure is within the configured band.
    None,
    /// Request this much additional memory before the guest hits OOM.
    ScaleUp(ByteSize),
    /// Release this much memory: the guest has been comfortably below the
    /// low-water mark for long enough.
    ScaleDown(ByteSize),
}

/// Configuration of the OOM guard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OomGuardPolicy {
    /// Utilization (used / available) above which a scale-up is requested.
    pub high_watermark: f64,
    /// Utilization below which a scale-down becomes a candidate.
    pub low_watermark: f64,
    /// Granularity of every grow request (matches the hotplug block size so
    /// each request onlines whole memory blocks).
    pub grow_step: ByteSize,
    /// Number of consecutive low-pressure observations required before any
    /// memory is handed back (hysteresis against oscillation).
    pub shrink_after_samples: u32,
    /// Memory the guest must always keep even when idle.
    pub floor: ByteSize,
}

impl OomGuardPolicy {
    /// Defaults: grow at 85% utilization in 2-GiB steps, shrink after four
    /// consecutive samples below 40%, never below 2 GiB.
    pub fn dredbox_default() -> Self {
        OomGuardPolicy {
            high_watermark: 0.85,
            low_watermark: 0.40,
            grow_step: ByteSize::from_gib(2),
            shrink_after_samples: 4,
            floor: ByteSize::from_gib(2),
        }
    }

    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics if the watermarks are not ordered within `(0, 1)` or the grow
    /// step is zero.
    pub fn validate(&self) {
        assert!(
            0.0 < self.low_watermark
                && self.low_watermark < self.high_watermark
                && self.high_watermark < 1.0,
            "watermarks must satisfy 0 < low < high < 1"
        );
        assert!(!self.grow_step.is_zero(), "grow step must be non-zero");
    }
}

impl Default for OomGuardPolicy {
    fn default() -> Self {
        OomGuardPolicy::dredbox_default()
    }
}

/// The per-VM out-of-memory guard.
///
/// ```
/// use dredbox_softstack::oom_guard::{GuardAction, OomGuard, OomGuardPolicy};
/// use dredbox_sim::units::ByteSize;
///
/// let mut guard = OomGuard::new(OomGuardPolicy::dredbox_default());
/// // 7.5 GiB used out of 8 GiB: the guard asks for more memory.
/// let action = guard.observe(ByteSize::from_mib(7_680), ByteSize::from_gib(8));
/// assert!(matches!(action, GuardAction::ScaleUp(_)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OomGuard {
    policy: OomGuardPolicy,
    consecutive_low: u32,
    scale_ups_triggered: u64,
    scale_downs_triggered: u64,
}

impl OomGuard {
    /// Creates a guard with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (see [`OomGuardPolicy::validate`]).
    pub fn new(policy: OomGuardPolicy) -> Self {
        policy.validate();
        OomGuard {
            policy,
            consecutive_low: 0,
            scale_ups_triggered: 0,
            scale_downs_triggered: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &OomGuardPolicy {
        &self.policy
    }

    /// Number of scale-ups this guard has requested so far.
    pub fn scale_ups_triggered(&self) -> u64 {
        self.scale_ups_triggered
    }

    /// Number of scale-downs this guard has requested so far.
    pub fn scale_downs_triggered(&self) -> u64 {
        self.scale_downs_triggered
    }

    /// Feeds one memory-pressure observation (`used` out of `available`
    /// guest memory) and returns the action to take.
    pub fn observe(&mut self, used: ByteSize, available: ByteSize) -> GuardAction {
        if available.is_zero() {
            // A guest with no memory at all is in immediate danger.
            self.scale_ups_triggered += 1;
            return GuardAction::ScaleUp(self.policy.grow_step);
        }
        let utilization = used.as_bytes() as f64 / available.as_bytes() as f64;
        if utilization >= self.policy.high_watermark {
            self.consecutive_low = 0;
            self.scale_ups_triggered += 1;
            // Grow enough (in whole steps) to bring utilization back under
            // the high-water mark with one step of headroom.
            let target = (used.as_bytes() as f64 / self.policy.high_watermark).ceil() as u64;
            let deficit = ByteSize::from_bytes(target.saturating_sub(available.as_bytes()));
            let steps = deficit.div_ceil_by(self.policy.grow_step).max(1);
            return GuardAction::ScaleUp(self.policy.grow_step.saturating_mul(steps));
        }
        if utilization < self.policy.low_watermark {
            self.consecutive_low += 1;
            if self.consecutive_low >= self.policy.shrink_after_samples {
                self.consecutive_low = 0;
                // Shrink towards the low-water band without dropping below
                // the floor, one step at a time.
                let spare = available.saturating_sub(self.policy.floor.max(used.saturating_mul(2)));
                let release = spare.min(self.policy.grow_step);
                if !release.is_zero() {
                    self.scale_downs_triggered += 1;
                    return GuardAction::ScaleDown(release);
                }
            }
        } else {
            self.consecutive_low = 0;
        }
        GuardAction::None
    }
}

impl Default for OomGuard {
    fn default() -> Self {
        OomGuard::new(OomGuardPolicy::dredbox_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn high_pressure_triggers_scale_up_with_enough_headroom() {
        let mut guard = OomGuard::default();
        let action = guard.observe(ByteSize::from_mib(7_800), ByteSize::from_gib(8));
        let GuardAction::ScaleUp(amount) = action else {
            panic!("expected a scale-up, got {action:?}");
        };
        assert!(amount >= guard.policy().grow_step);
        assert_eq!(amount.as_bytes() % guard.policy().grow_step.as_bytes(), 0);
        assert_eq!(guard.scale_ups_triggered(), 1);
        // After the grant, utilization drops below the high-water mark.
        let new_available = ByteSize::from_gib(8) + amount;
        let utilization = 7_800.0 * 1024.0 * 1024.0 / new_available.as_bytes() as f64;
        assert!(utilization < guard.policy().high_watermark);
    }

    #[test]
    fn moderate_pressure_does_nothing() {
        let mut guard = OomGuard::default();
        for _ in 0..10 {
            assert_eq!(
                guard.observe(ByteSize::from_gib(5), ByteSize::from_gib(8)),
                GuardAction::None
            );
        }
        assert_eq!(guard.scale_ups_triggered(), 0);
        assert_eq!(guard.scale_downs_triggered(), 0);
    }

    #[test]
    fn sustained_low_pressure_shrinks_with_hysteresis() {
        let mut guard = OomGuard::default();
        // Three low samples: still nothing (hysteresis).
        for _ in 0..3 {
            assert_eq!(
                guard.observe(ByteSize::from_gib(2), ByteSize::from_gib(16)),
                GuardAction::None
            );
        }
        // The fourth consecutive low sample releases one step.
        let action = guard.observe(ByteSize::from_gib(2), ByteSize::from_gib(16));
        assert!(
            matches!(action, GuardAction::ScaleDown(amount) if amount == ByteSize::from_gib(2))
        );
        assert_eq!(guard.scale_downs_triggered(), 1);
        // A pressure blip resets the counter.
        assert_eq!(
            guard.observe(ByteSize::from_gib(10), ByteSize::from_gib(16)),
            GuardAction::None
        );
        for _ in 0..3 {
            assert_eq!(
                guard.observe(ByteSize::from_gib(2), ByteSize::from_gib(16)),
                GuardAction::None
            );
        }
    }

    #[test]
    fn never_shrinks_below_the_floor() {
        let mut guard = OomGuard::default();
        for _ in 0..16 {
            let action = guard.observe(ByteSize::from_mib(100), ByteSize::from_gib(2));
            assert_eq!(
                action,
                GuardAction::None,
                "a guest at the floor must not shrink"
            );
        }
    }

    #[test]
    fn zero_available_memory_is_an_emergency() {
        let mut guard = OomGuard::default();
        assert!(matches!(
            guard.observe(ByteSize::ZERO, ByteSize::ZERO),
            GuardAction::ScaleUp(_)
        ));
    }

    #[test]
    #[should_panic]
    fn invalid_watermarks_rejected() {
        let _ = OomGuard::new(OomGuardPolicy {
            high_watermark: 0.3,
            low_watermark: 0.6,
            ..OomGuardPolicy::dredbox_default()
        });
    }

    proptest! {
        #[test]
        fn scale_up_amounts_are_whole_steps(used_gib in 1u64..64, avail_gib in 1u64..64) {
            let mut guard = OomGuard::default();
            if let GuardAction::ScaleUp(amount) =
                guard.observe(ByteSize::from_gib(used_gib), ByteSize::from_gib(avail_gib))
            {
                prop_assert!(amount.as_bytes() % guard.policy().grow_step.as_bytes() == 0);
                prop_assert!(!amount.is_zero());
            }
        }

        #[test]
        fn guard_never_panics_on_any_observation(used in 0u64..1_000_000, avail in 0u64..1_000_000) {
            let mut guard = OomGuard::default();
            let _ = guard.observe(ByteSize::from_mib(used), ByteSize::from_mib(avail));
        }
    }
}
