//! The baremetal OS layer: arm64 memory hotplug.
//!
//! After the orchestrator physically attaches remote memory (glue-logic and
//! circuit configuration), the baremetal kernel on the dCOMPUBRICK onlines
//! the new physical page frames through memory hotplug and makes them
//! available — first to itself, then (via QEMU DIMM hotplug) to guests.

use serde::{Deserialize, Serialize};

use dredbox_bricks::BrickId;
use dredbox_memory::HotplugModel;
use dredbox_sim::time::SimDuration;
use dredbox_sim::units::ByteSize;

use crate::error::SoftstackError;

/// The baremetal Linux instance running on one dCOMPUBRICK.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaremetalOs {
    brick: BrickId,
    hotplug: HotplugModel,
    local_memory: ByteSize,
    onlined_remote: ByteSize,
    hotplug_operations: u64,
}

impl BaremetalOs {
    /// Boots the baremetal OS on `brick` with `local_memory` of directly
    /// attached DDR and the given hotplug cost model.
    pub fn new(brick: BrickId, local_memory: ByteSize, hotplug: HotplugModel) -> Self {
        BaremetalOs {
            brick,
            hotplug,
            local_memory,
            onlined_remote: ByteSize::ZERO,
            hotplug_operations: 0,
        }
    }

    /// The brick this OS runs on.
    pub fn brick(&self) -> BrickId {
        self.brick
    }

    /// Local (non-disaggregated) memory.
    pub fn local_memory(&self) -> ByteSize {
        self.local_memory
    }

    /// Remote memory currently onlined by the kernel.
    pub fn onlined_remote(&self) -> ByteSize {
        self.onlined_remote
    }

    /// Total memory visible to the kernel.
    pub fn total_memory(&self) -> ByteSize {
        self.local_memory + self.onlined_remote
    }

    /// Number of hotplug operations performed.
    pub fn hotplug_operations(&self) -> u64 {
        self.hotplug_operations
    }

    /// The hotplug cost model in use.
    pub fn hotplug_model(&self) -> &HotplugModel {
        &self.hotplug
    }

    /// Onlines `amount` of newly attached remote memory, returning the time
    /// the kernel spends doing so.
    pub fn online_remote(&mut self, amount: ByteSize) -> SimDuration {
        if amount.is_zero() {
            return SimDuration::ZERO;
        }
        self.onlined_remote += amount;
        self.hotplug_operations += 1;
        self.hotplug.online_time(amount)
    }

    /// Offlines `amount` of remote memory ahead of a detach, returning the
    /// time spent migrating pages off it and tearing down the mapping.
    ///
    /// # Errors
    ///
    /// Returns [`SoftstackError::DetachUnderflow`]-style accounting error as
    /// [`SoftstackError::InsufficientMemory`] if more is offlined than is
    /// currently onlined.
    pub fn offline_remote(&mut self, amount: ByteSize) -> Result<SimDuration, SoftstackError> {
        if amount > self.onlined_remote {
            return Err(SoftstackError::InsufficientMemory {
                brick: self.brick,
                requested: amount,
                available: self.onlined_remote,
            });
        }
        self.onlined_remote -= amount;
        self.hotplug_operations += 1;
        Ok(self.hotplug.offline_time(amount))
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(BaremetalOs {
    brick,
    hotplug,
    local_memory,
    onlined_remote,
    hotplug_operations,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn os() -> BaremetalOs {
        BaremetalOs::new(
            BrickId(0),
            ByteSize::from_gib(4),
            HotplugModel::dredbox_default(),
        )
    }

    #[test]
    fn online_grows_visible_memory() {
        let mut os = os();
        assert_eq!(os.brick(), BrickId(0));
        assert_eq!(os.total_memory(), ByteSize::from_gib(4));
        let t = os.online_remote(ByteSize::from_gib(8));
        assert!(t.as_millis_f64() > 0.0);
        assert_eq!(os.onlined_remote(), ByteSize::from_gib(8));
        assert_eq!(os.total_memory(), ByteSize::from_gib(12));
        assert_eq!(os.local_memory(), ByteSize::from_gib(4));
        assert_eq!(os.hotplug_operations(), 1);
        assert_eq!(os.online_remote(ByteSize::ZERO), SimDuration::ZERO);
        assert_eq!(os.hotplug_operations(), 1);
    }

    #[test]
    fn offline_shrinks_and_validates() {
        let mut os = os();
        os.online_remote(ByteSize::from_gib(8));
        let t = os.offline_remote(ByteSize::from_gib(4)).unwrap();
        assert!(
            t > os.hotplug_model().online_time(ByteSize::from_gib(4)),
            "offlining is slower"
        );
        assert_eq!(os.onlined_remote(), ByteSize::from_gib(4));
        assert!(matches!(
            os.offline_remote(ByteSize::from_gib(16)),
            Err(SoftstackError::InsufficientMemory { .. })
        ));
    }
}
