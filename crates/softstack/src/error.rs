//! Error type for the system-software models.

use std::fmt;

use dredbox_bricks::BrickId;
use dredbox_sim::units::ByteSize;

use crate::vm::VmId;

/// Errors produced by the software-stack models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SoftstackError {
    /// The referenced VM does not exist on this hypervisor.
    NoSuchVm {
        /// Offending VM.
        vm: VmId,
    },
    /// The VM is not in a state that allows the operation.
    VmNotRunning {
        /// Offending VM.
        vm: VmId,
    },
    /// The hypervisor's compute brick does not have the requested vCPUs.
    InsufficientCores {
        /// The brick backing the hypervisor.
        brick: BrickId,
        /// Requested vCPUs.
        requested: u32,
        /// Free cores.
        available: u32,
    },
    /// The hypervisor does not have enough attached memory for the guest.
    InsufficientMemory {
        /// The brick backing the hypervisor.
        brick: BrickId,
        /// Requested memory.
        requested: ByteSize,
        /// Memory currently available to guests.
        available: ByteSize,
    },
    /// A memory detach asked for more than the VM holds.
    DetachUnderflow {
        /// Offending VM.
        vm: VmId,
    },
}

impl fmt::Display for SoftstackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoftstackError::NoSuchVm { vm } => write!(f, "no such vm: {vm}"),
            SoftstackError::VmNotRunning { vm } => write!(f, "{vm} is not running"),
            SoftstackError::InsufficientCores {
                brick,
                requested,
                available,
            } => write!(
                f,
                "{brick}: requested {requested} vcpus but only {available} cores are free"
            ),
            SoftstackError::InsufficientMemory {
                brick,
                requested,
                available,
            } => write!(
                f,
                "{brick}: requested {requested} but only {available} is available to guests"
            ),
            SoftstackError::DetachUnderflow { vm } => {
                write!(f, "{vm}: detach requested more memory than the vm holds")
            }
        }
    }
}

impl std::error::Error for SoftstackError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_subject() {
        assert!(SoftstackError::NoSuchVm { vm: VmId(3) }
            .to_string()
            .contains("vm3"));
        let e = SoftstackError::InsufficientMemory {
            brick: BrickId(1),
            requested: ByteSize::from_gib(8),
            available: ByteSize::from_gib(4),
        };
        assert!(e.to_string().contains("8.00 GiB"));
        assert!(SoftstackError::DetachUnderflow { vm: VmId(1) }
            .to_string()
            .contains("vm1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SoftstackError>();
    }
}
