//! VM migration model.
//!
//! "Deliver enhanced elasticity and improved process/virtual machine
//! migration within the datacenter" is one of the project objectives. In a
//! disaggregated rack a VM's memory can stay put on its dMEMBRICKs: only the
//! compute state moves, which makes migration dramatically cheaper than the
//! conventional pre-copy of the full guest RAM. This model quantifies both.

use serde::{Deserialize, Serialize};

use dredbox_sim::time::SimDuration;
use dredbox_sim::units::{Bandwidth, ByteSize};

/// Pre-copy live-migration model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationModel {
    /// Bandwidth available for migration traffic.
    pub link: Bandwidth,
    /// Rate at which the guest dirties memory while being migrated.
    pub dirty_rate: Bandwidth,
    /// Maximum number of pre-copy rounds before the VM is paused and the
    /// remainder is copied (stop-and-copy).
    pub max_rounds: u32,
    /// Fixed cost of transferring vCPU/device state and switching over.
    pub switchover: SimDuration,
    /// Brick-local working state per vCPU (caches, page tables, device
    /// queues) — the only memory a disaggregated migration must move.
    pub local_state_per_vcpu: ByteSize,
}

impl MigrationModel {
    /// Defaults: a 10 Gb/s migration link, a 1 Gb/s dirty rate, at most five
    /// pre-copy rounds, 50 ms of switchover, 128 MiB of brick-local state
    /// per vCPU.
    pub fn dredbox_default() -> Self {
        MigrationModel {
            link: Bandwidth::from_gbps(10.0),
            dirty_rate: Bandwidth::from_gbps(1.0),
            max_rounds: 5,
            switchover: SimDuration::from_millis(50),
            local_state_per_vcpu: ByteSize::from_mib(128),
        }
    }

    /// The brick-local state a VM with `vcpus` cores must move when its
    /// memory is disaggregated.
    pub fn local_state(&self, vcpus: u32) -> ByteSize {
        self.local_state_per_vcpu.saturating_mul(u64::from(vcpus))
    }

    /// Total time to live-migrate a VM whose guest RAM must be copied (the
    /// conventional case: memory lives on the source host).
    pub fn conventional_migration(&self, guest_memory: ByteSize) -> SimDuration {
        let mut to_copy = guest_memory;
        let mut total = SimDuration::ZERO;
        for _ in 0..self.max_rounds {
            if to_copy.is_zero() {
                break;
            }
            let round_time = self.link.transfer_time(to_copy);
            total += round_time;
            // While the round ran, the guest dirtied more memory.
            let dirtied_bits = self.dirty_rate.as_bps() * round_time.as_secs_f64();
            let dirtied = ByteSize::from_bytes((dirtied_bits / 8.0) as u64).min(guest_memory);
            to_copy = dirtied;
        }
        // Stop-and-copy whatever remains, then switch over.
        total + self.link.transfer_time(to_copy) + self.switchover
    }

    /// Total time to migrate a VM whose memory is disaggregated: only the
    /// compute brick's local working state (a small fraction, here the
    /// `local_state` argument) plus vCPU/device state moves; the remote
    /// segments are simply re-attached to the destination brick by the
    /// orchestrator.
    pub fn disaggregated_migration(&self, local_state: ByteSize) -> SimDuration {
        self.link.transfer_time(local_state) + self.switchover
    }

    /// Speed-up factor of disaggregated over conventional migration for a
    /// guest with `guest_memory` of RAM of which only `local_state` is
    /// brick-local.
    pub fn speedup(&self, guest_memory: ByteSize, local_state: ByteSize) -> f64 {
        let conventional = self.conventional_migration(guest_memory).as_nanos() as f64;
        let disaggregated = self.disaggregated_migration(local_state).as_nanos() as f64;
        conventional / disaggregated.max(1.0)
    }
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel::dredbox_default()
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(MigrationModel {
    link,
    dirty_rate,
    max_rounds,
    switchover,
    local_state_per_vcpu,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_migration_scales_with_guest_memory() {
        let m = MigrationModel::dredbox_default();
        let small = m.conventional_migration(ByteSize::from_gib(4));
        let large = m.conventional_migration(ByteSize::from_gib(32));
        assert!(large > small);
        // 32 GiB at 10 Gb/s is ~27.5 s for the first round alone.
        assert!(large.as_secs_f64() > 25.0);
    }

    #[test]
    fn disaggregated_migration_moves_only_local_state() {
        let m = MigrationModel::dredbox_default();
        let t = m.disaggregated_migration(ByteSize::from_mib(512));
        assert!(t.as_secs_f64() < 1.0, "should be sub-second, got {t}");
        let speedup = m.speedup(ByteSize::from_gib(32), ByteSize::from_mib(512));
        assert!(speedup > 20.0, "expected >20x speedup, got {speedup:.1}x");
    }

    #[test]
    fn precopy_converges_or_stops() {
        let m = MigrationModel {
            // Dirty rate equal to the link: pre-copy can never converge, the
            // model must still terminate via max_rounds.
            dirty_rate: Bandwidth::from_gbps(10.0),
            ..MigrationModel::dredbox_default()
        };
        let t = m.conventional_migration(ByteSize::from_gib(8));
        assert!(t.as_secs_f64().is_finite());
        assert!(t > m.switchover);
    }

    #[test]
    fn zero_memory_migration_is_just_switchover() {
        let m = MigrationModel::dredbox_default();
        assert_eq!(m.conventional_migration(ByteSize::ZERO), m.switchover);
        assert_eq!(m.disaggregated_migration(ByteSize::ZERO), m.switchover);
    }

    #[test]
    fn local_state_scales_with_vcpus() {
        let m = MigrationModel::dredbox_default();
        assert_eq!(m.local_state(0), ByteSize::ZERO);
        assert_eq!(m.local_state(4), ByteSize::from_mib(512));
        // A 4-vCPU / 32 GiB guest: moving only the local state beats the
        // pre-copy of the full RAM by well over an order of magnitude.
        let speedup = m.speedup(ByteSize::from_gib(32), m.local_state(4));
        assert!(speedup > 20.0, "got {speedup:.1}x");
    }
}
