//! The dReDBox disaggregation system software (Section IV of the paper).
//!
//! The prototype's software stack lets "virtual machines and orchestration
//! software dynamically and safely request, attach and use remote memory on
//! any given dCOMPUBRICK". It has three layers, each modelled here:
//!
//! * the **baremetal OS layer** ([`baremetal`]) — the arm64 Linux memory
//!   hotplug support that attaches new physical page frames at runtime;
//! * the **virtualization layer** ([`hypervisor`], [`vm`]) — QEMU-style
//!   hotplug of RAM DIMMs into running guests, plus the scale-up support
//!   that lets applications inside a VM request more memory;
//! * the **Scale-up API** ([`scaleup`]) — the control flow from an
//!   application's request through the Scale-up controller to the SDM
//!   controller and back down through glue-logic configuration and hotplug.
//!
//! [`scaleout`] models the conventional alternative the paper compares
//! against in Figure 10 (spawning additional VMs to give an application more
//! aggregate memory), and [`migration`] models VM migration, one of the
//! project's stated objectives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baremetal;
pub mod error;
pub mod hypervisor;
pub mod migration;
pub mod oom_guard;
pub mod scaleout;
pub mod scaleup;
pub mod vm;

pub use baremetal::BaremetalOs;
pub use error::SoftstackError;
pub use hypervisor::Hypervisor;
pub use migration::MigrationModel;
pub use oom_guard::{GuardAction, OomGuard, OomGuardPolicy};
pub use scaleout::ScaleOutBaseline;
pub use scaleup::{ScaleUpController, ScaleUpOutcome, ScaleUpTimings};
pub use vm::{Vm, VmId, VmSpec, VmState};

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::baremetal::BaremetalOs;
    pub use crate::error::SoftstackError;
    pub use crate::hypervisor::Hypervisor;
    pub use crate::scaleout::ScaleOutBaseline;
    pub use crate::scaleup::{ScaleUpController, ScaleUpOutcome, ScaleUpTimings};
    pub use crate::vm::{Vm, VmId, VmSpec, VmState};
}
