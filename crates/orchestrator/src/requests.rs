//! Requests arriving at the SDM controller.

use serde::{Deserialize, Serialize};

use dredbox_bricks::{Bitstream, BrickId};
use dredbox_sim::units::ByteSize;

/// A request (relayed from OpenStack) to allocate a new VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VmAllocationRequest {
    /// Virtual CPUs requested.
    pub vcpus: u32,
    /// Guest memory requested.
    pub memory: ByteSize,
}

impl VmAllocationRequest {
    /// Creates a request.
    pub fn new(vcpus: u32, memory: ByteSize) -> Self {
        VmAllocationRequest { vcpus, memory }
    }
}

impl std::fmt::Display for VmAllocationRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allocate {} vcpus + {}", self.vcpus, self.memory)
    }
}

/// A scale-up demand: a VM on a given dCOMPUBRICK asking for more memory
/// through the Scale-up API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScaleUpDemand {
    /// The compute brick whose VM is asking.
    pub compute_brick: BrickId,
    /// The amount of additional memory requested.
    pub amount: ByteSize,
}

impl ScaleUpDemand {
    /// Creates a demand.
    pub fn new(compute_brick: BrickId, amount: ByteSize) -> Self {
        ScaleUpDemand {
            compute_brick,
            amount,
        }
    }
}

impl std::fmt::Display for ScaleUpDemand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: scale up by {}", self.compute_brick, self.amount)
    }
}

/// An offload request: a VM on a dCOMPUBRICK asking the SDM controller to
/// run a kernel near the data on a dACCELBRICK.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OffloadRequest {
    /// The compute brick whose VM is asking.
    pub compute_brick: BrickId,
    /// The partial-reconfiguration bitstream implementing the kernel.
    pub bitstream: Bitstream,
    /// Input data the kernel streams through once.
    pub input: ByteSize,
}

impl OffloadRequest {
    /// Creates a request.
    pub fn new(compute_brick: BrickId, bitstream: Bitstream, input: ByteSize) -> Self {
        OffloadRequest {
            compute_brick,
            bitstream,
            input,
        }
    }
}

impl std::fmt::Display for OffloadRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: offload '{}' over {}",
            self.compute_brick, self.bitstream.name, self.input
        )
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(VmAllocationRequest { vcpus, memory });
dredbox_snap::snap_struct!(ScaleUpDemand {
    compute_brick,
    amount,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let r = VmAllocationRequest::new(8, ByteSize::from_gib(16));
        assert_eq!(r.to_string(), "allocate 8 vcpus + 16.00 GiB");
        let s = ScaleUpDemand::new(BrickId(3), ByteSize::from_gib(4));
        assert_eq!(s.to_string(), "brick3: scale up by 4.00 GiB");
        let o = OffloadRequest::new(
            BrickId(0),
            Bitstream::new("sobel", ByteSize::from_mib(16)),
            ByteSize::from_gib(1),
        );
        assert_eq!(o.to_string(), "brick0: offload 'sobel' over 1.00 GiB");
    }
}
