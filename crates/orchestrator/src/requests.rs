//! Requests arriving at the SDM controller.

use serde::{Deserialize, Serialize};

use dredbox_bricks::BrickId;
use dredbox_sim::units::ByteSize;

/// A request (relayed from OpenStack) to allocate a new VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VmAllocationRequest {
    /// Virtual CPUs requested.
    pub vcpus: u32,
    /// Guest memory requested.
    pub memory: ByteSize,
}

impl VmAllocationRequest {
    /// Creates a request.
    pub fn new(vcpus: u32, memory: ByteSize) -> Self {
        VmAllocationRequest { vcpus, memory }
    }
}

impl std::fmt::Display for VmAllocationRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allocate {} vcpus + {}", self.vcpus, self.memory)
    }
}

/// A scale-up demand: a VM on a given dCOMPUBRICK asking for more memory
/// through the Scale-up API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScaleUpDemand {
    /// The compute brick whose VM is asking.
    pub compute_brick: BrickId,
    /// The amount of additional memory requested.
    pub amount: ByteSize,
}

impl ScaleUpDemand {
    /// Creates a demand.
    pub fn new(compute_brick: BrickId, amount: ByteSize) -> Self {
        ScaleUpDemand {
            compute_brick,
            amount,
        }
    }
}

impl std::fmt::Display for ScaleUpDemand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: scale up by {}", self.compute_brick, self.amount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let r = VmAllocationRequest::new(8, ByteSize::from_gib(16));
        assert_eq!(r.to_string(), "allocate 8 vcpus + 16.00 GiB");
        let s = ScaleUpDemand::new(BrickId(3), ByteSize::from_gib(4));
        assert_eq!(s.to_string(), "brick3: scale up by 4.00 GiB");
    }
}
