//! Shared bucket-maintenance helpers for the incremental indexes.
//!
//! Both [`crate::capacity::CapacityIndex`] and
//! [`crate::accel_index::AccelIndex`] keep `BTreeMap<key, BTreeSet<BrickId>>`
//! buckets; these helpers insert and remove members while dropping buckets
//! that empty, so bucket-semantics fixes live in one place.

use std::collections::{BTreeMap, BTreeSet};

use dredbox_bricks::BrickId;

/// Adds `brick` to the bucket at `key`, creating the bucket if needed.
pub(crate) fn bucket_insert<K: Ord>(
    map: &mut BTreeMap<K, BTreeSet<BrickId>>,
    key: K,
    brick: BrickId,
) {
    map.entry(key).or_default().insert(brick);
}

/// Removes `brick` from the bucket at `key`, dropping the bucket once empty.
pub(crate) fn bucket_remove<K: Ord>(
    map: &mut BTreeMap<K, BTreeSet<BrickId>>,
    key: &K,
    brick: BrickId,
) {
    if let Some(bucket) = map.get_mut(key) {
        bucket.remove(&brick);
        if bucket.is_empty() {
            map.remove(key);
        }
    }
}
