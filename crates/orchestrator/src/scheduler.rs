//! FCFS scheduling of VM allocation requests.
//!
//! Role (a) of the SDM controller is to receive VM/bare-metal allocation
//! requests from OpenStack. The [`FcfsScheduler`] queues timestamped
//! requests and admits them in arrival order against an [`SdmController`],
//! recording per-request admission latency and the rack utilization over
//! time — the same First-Come-First-Served policy the TCO study uses, but
//! driven dynamically.

use serde::{Deserialize, Serialize};

use dredbox_sim::time::{SimDuration, SimTime};
use dredbox_sim::units::ByteSize;

use crate::requests::VmAllocationRequest;
use crate::sdm_controller::{ScaleUpGrant, SdmController};

/// One queued allocation request with its arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueuedRequest {
    /// When the request arrived at the controller.
    pub arrival: SimTime,
    /// What was requested.
    pub request: VmAllocationRequest,
}

/// The outcome of one admitted (or rejected) request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Admission {
    /// The request was admitted.
    Admitted {
        /// When the request arrived.
        arrival: SimTime,
        /// When the controller finished configuring everything.
        completed: SimTime,
        /// The compute brick chosen for the VM.
        brick: dredbox_bricks::BrickId,
        /// The memory grant backing the VM.
        grant: Box<ScaleUpGrant>,
    },
    /// The request could not be satisfied.
    Rejected {
        /// When the request arrived.
        arrival: SimTime,
        /// What was requested.
        request: VmAllocationRequest,
    },
}

impl Admission {
    /// Whether the request was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted { .. })
    }

    /// Admission latency (queueing plus service), if admitted.
    pub fn latency(&self) -> Option<SimDuration> {
        match self {
            Admission::Admitted {
                arrival, completed, ..
            } => Some(completed.saturating_duration_since(*arrival)),
            Admission::Rejected { .. } => None,
        }
    }
}

/// Summary of one scheduling run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Per-request admissions, in arrival order.
    pub admissions: Vec<Admission>,
    /// Simulated time at which the last admitted request completed.
    pub makespan: SimTime,
    /// Total memory granted across admitted requests.
    pub granted_memory: ByteSize,
}

impl ScheduleOutcome {
    /// Number of admitted requests.
    pub fn admitted_count(&self) -> usize {
        self.admissions.iter().filter(|a| a.is_admitted()).count()
    }

    /// Number of rejected requests.
    pub fn rejected_count(&self) -> usize {
        self.admissions.len() - self.admitted_count()
    }

    /// Mean admission latency over admitted requests, if any were admitted.
    pub fn mean_latency(&self) -> Option<SimDuration> {
        let latencies: Vec<SimDuration> =
            self.admissions.iter().filter_map(|a| a.latency()).collect();
        if latencies.is_empty() {
            return None;
        }
        let total_ns: u64 = latencies.iter().map(|d| d.as_nanos()).sum();
        Some(SimDuration::from_nanos(total_ns / latencies.len() as u64))
    }
}

/// A First-Come-First-Served scheduler in front of one SDM controller.
///
/// The controller is a single autonomous service: requests are served one at
/// a time in arrival order, so a request's completion time is the later of
/// its arrival and the previous completion, plus its own service time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FcfsScheduler {
    queue: Vec<QueuedRequest>,
}

impl FcfsScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        FcfsScheduler::default()
    }

    /// Enqueues a request arriving at `arrival`.
    pub fn submit(&mut self, arrival: SimTime, request: VmAllocationRequest) -> &mut Self {
        self.queue.push(QueuedRequest { arrival, request });
        self
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Runs the queue against `sdm` in FCFS order, consuming the queue.
    pub fn run(&mut self, sdm: &mut SdmController) -> ScheduleOutcome {
        let mut queue = std::mem::take(&mut self.queue);
        queue.sort_by_key(|q| q.arrival);

        let mut admissions = Vec::with_capacity(queue.len());
        let mut busy_until = SimTime::ZERO;
        let mut granted_memory = ByteSize::ZERO;
        for queued in queue {
            let start = queued.arrival.max(busy_until);
            match sdm.allocate_vm(queued.request) {
                Ok((brick, grant)) => {
                    let completed = start + grant.service_time;
                    busy_until = completed;
                    granted_memory += grant.grant.total();
                    admissions.push(Admission::Admitted {
                        arrival: queued.arrival,
                        completed,
                        brick,
                        grant: Box::new(grant),
                    });
                }
                Err(_) => {
                    admissions.push(Admission::Rejected {
                        arrival: queued.arrival,
                        request: queued.request,
                    });
                }
            }
        }
        ScheduleOutcome {
            makespan: busy_until,
            granted_memory,
            admissions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dredbox_bricks::BrickId;

    fn controller(compute: u32, membricks: u32) -> SdmController {
        let mut sdm = SdmController::dredbox_default();
        for b in 0..compute {
            sdm.register_compute_brick(BrickId(b), 32, 8);
        }
        for b in 0..membricks {
            sdm.register_membrick(BrickId(100 + b), ByteSize::from_gib(32));
        }
        sdm
    }

    #[test]
    fn requests_are_admitted_in_arrival_order() {
        let mut sdm = controller(4, 4);
        let mut scheduler = FcfsScheduler::new();
        // Submit out of order; the scheduler must serve by arrival time.
        scheduler.submit(
            SimTime::from_secs(10),
            VmAllocationRequest::new(4, ByteSize::from_gib(8)),
        );
        scheduler.submit(
            SimTime::from_secs(1),
            VmAllocationRequest::new(4, ByteSize::from_gib(8)),
        );
        scheduler.submit(
            SimTime::from_secs(5),
            VmAllocationRequest::new(4, ByteSize::from_gib(8)),
        );
        assert_eq!(scheduler.len(), 3);
        assert!(!scheduler.is_empty());

        let outcome = scheduler.run(&mut sdm);
        assert!(scheduler.is_empty());
        assert_eq!(outcome.admitted_count(), 3);
        assert_eq!(outcome.rejected_count(), 0);
        assert_eq!(outcome.granted_memory, ByteSize::from_gib(24));
        let arrivals: Vec<SimTime> = outcome
            .admissions
            .iter()
            .map(|a| match a {
                Admission::Admitted { arrival, .. } => *arrival,
                Admission::Rejected { arrival, .. } => *arrival,
            })
            .collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(outcome.makespan > SimTime::from_secs(10));
        assert!(
            outcome
                .mean_latency()
                .expect("admitted requests")
                .as_millis_f64()
                > 0.0
        );
    }

    #[test]
    fn a_burst_queues_behind_the_single_controller() {
        let mut sdm = controller(8, 8);
        let mut scheduler = FcfsScheduler::new();
        for _ in 0..8 {
            scheduler.submit(
                SimTime::ZERO,
                VmAllocationRequest::new(2, ByteSize::from_gib(4)),
            );
        }
        let outcome = scheduler.run(&mut sdm);
        assert_eq!(outcome.admitted_count(), 8);
        // Completion times are strictly increasing: one controller, FIFO.
        let completions: Vec<SimTime> = outcome
            .admissions
            .iter()
            .filter_map(|a| match a {
                Admission::Admitted { completed, .. } => Some(*completed),
                Admission::Rejected { .. } => None,
            })
            .collect();
        assert!(completions.windows(2).all(|w| w[0] < w[1]));
        // The last requester waited for everyone ahead of it (its latency
        // includes seven service times on top of its own).
        let first = outcome.admissions[0].latency().expect("admitted");
        let last = outcome.admissions[7].latency().expect("admitted");
        assert!(
            last > first.saturating_mul(2),
            "last {last} vs first {first}"
        );
    }

    #[test]
    fn infeasible_requests_are_rejected_not_dropped() {
        let mut sdm = controller(1, 1);
        let mut scheduler = FcfsScheduler::new();
        scheduler.submit(
            SimTime::ZERO,
            VmAllocationRequest::new(16, ByteSize::from_gib(16)),
        );
        scheduler.submit(
            SimTime::ZERO,
            VmAllocationRequest::new(64, ByteSize::from_gib(1)),
        );
        scheduler.submit(
            SimTime::ZERO,
            VmAllocationRequest::new(1, ByteSize::from_gib(500)),
        );
        let outcome = scheduler.run(&mut sdm);
        assert_eq!(outcome.admissions.len(), 3);
        assert_eq!(outcome.admitted_count(), 1);
        assert_eq!(outcome.rejected_count(), 2);
        assert!(outcome.admissions[1].latency().is_none());
    }

    #[test]
    fn empty_queue_yields_empty_outcome() {
        let mut sdm = controller(1, 1);
        let outcome = FcfsScheduler::new().run(&mut sdm);
        assert!(outcome.admissions.is_empty());
        assert_eq!(outcome.mean_latency(), None);
        assert_eq!(outcome.makespan, SimTime::ZERO);
        assert_eq!(outcome.granted_memory, ByteSize::ZERO);
    }
}
