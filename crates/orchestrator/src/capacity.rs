//! Incrementally maintained capacity indexes for the SDM control plane.
//!
//! The paper's SDM controller must "safely inspect resource availability"
//! for every request. Rebuilding a rack-wide snapshot per request makes the
//! control plane O(bricks × requests) — fine for the four-brick vertical
//! prototype, ruinous at rack scale. The [`CapacityIndex`] keeps the
//! availability inspection *incremental*: every allocate, release, scale-up
//! and power transition updates a handful of ordered sets, and each
//! placement query becomes an index lookup with zero per-request heap
//! allocation.
//!
//! ## Structure
//!
//! Bricks are ranked by their query key so every policy's argmin/argmax
//! maps onto ordered-set navigation. Each rank set holds flat
//! `(key, brick)` pairs — tuple order `(key asc, id asc)` is exactly the
//! walk order of a key-bucketed map, while insert/remove are a single tree
//! operation with no per-bucket allocation (index maintenance runs on the
//! scenario engine's per-event path):
//!
//! * `powered_by_free` — powered-on bricks, keyed by free cores. Serves
//!   best-fit ("fullest that fits": first entry at or above the request)
//!   and worst-fit ("emptiest": last key group) queries in `O(log n)`.
//! * `active_by_free` — the subset already running VMs, same key; the
//!   power-aware policy consults it first so sleeping bricks stay asleep.
//! * `sleeping_by_total` — powered-off bricks keyed by total cores, the
//!   wake-as-last-resort fallback every policy shares.
//! * `idle` — bricks running no VM (any power state), the power-off
//!   candidates, kept sorted so sweeps iterate without snapshotting.
//!
//! Within every key, entries are ordered by [`BrickId`], which preserves
//! the documented lowest-id tie-breaks the scenario engine's same-seed
//! replay guarantee depends on: the reference slice scan
//! ([`crate::placement::PlacementPolicy::choose`]) and the indexed path
//! ([`crate::placement::PlacementPolicy::choose_indexed`]) are decision-for-
//! decision identical (see the `capacity_equivalence` property tests).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use dredbox_bricks::{BrickId, BrickMap};

use crate::placement::ComputeBrickView;

/// A capacity rank set: flat `(key, brick)` pairs standing in for a
/// key-bucketed map (see the module docs).
type RankSet = BTreeSet<(u32, BrickId)>;

/// The capacity facts of one compute brick, as indexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapacitySlot {
    /// Total schedulable cores.
    pub total_cores: u32,
    /// Cores currently free.
    pub free_cores: u32,
    /// Whether the brick runs at least one VM.
    pub active: bool,
    /// Whether the brick is powered on.
    pub powered_on: bool,
}

impl CapacitySlot {
    /// The slot as a placement view (the reference-scan currency).
    pub fn view(&self, brick: BrickId) -> ComputeBrickView {
        ComputeBrickView {
            brick,
            total_cores: self.total_cores,
            free_cores: self.free_cores,
            active: self.active,
            powered_on: self.powered_on,
        }
    }
}

/// The incrementally maintained availability view over all compute bricks.
///
/// ```
/// use dredbox_orchestrator::capacity::{CapacityIndex, CapacitySlot};
/// use dredbox_orchestrator::placement::PlacementPolicy;
/// use dredbox_bricks::{BrickId, BrickMap};
///
/// let mut index = CapacityIndex::new();
/// index.upsert(BrickId(0), CapacitySlot { total_cores: 32, free_cores: 8, active: true, powered_on: true });
/// index.upsert(BrickId(1), CapacitySlot { total_cores: 32, free_cores: 32, active: false, powered_on: true });
/// // Power-aware packing prefers the active brick while the request fits.
/// assert_eq!(PlacementPolicy::PowerAware.choose_indexed(&index, 8), Some(BrickId(0)));
/// assert_eq!(PlacementPolicy::PowerAware.choose_indexed(&index, 16), Some(BrickId(1)));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CapacityIndex {
    /// Authoritative slot per brick, so updates can unindex the old state.
    slots: BrickMap<CapacitySlot>,
    /// Powered-on bricks ranked by free cores.
    powered_by_free: RankSet,
    /// Powered-on bricks that run at least one VM, ranked by free cores.
    active_by_free: RankSet,
    /// Powered-off bricks ranked by total cores (wake-up candidates).
    sleeping_by_total: RankSet,
    /// Bricks running no VM, in id order (power-off candidates).
    idle: BTreeSet<BrickId>,
    /// Sum of free cores over powered-on bricks, maintained alongside
    /// `powered_by_free` so rack-level digests read it in `O(1)`.
    #[serde(default)]
    powered_free_cores: u64,
}

impl CapacityIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        CapacityIndex::default()
    }

    /// Number of indexed bricks.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no brick is indexed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The indexed slot of a brick, if present.
    pub fn slot(&self, brick: BrickId) -> Option<&CapacitySlot> {
        self.slots.get(brick)
    }

    /// Inserts or replaces a brick's slot, keeping every bucket in sync.
    /// `O(log n)`.
    pub fn upsert(&mut self, brick: BrickId, slot: CapacitySlot) {
        if let Some(old) = self.slots.insert(brick, slot) {
            self.unindex(brick, &old);
        }
        if slot.powered_on {
            self.powered_by_free.insert((slot.free_cores, brick));
            self.powered_free_cores += u64::from(slot.free_cores);
            if slot.active {
                self.active_by_free.insert((slot.free_cores, brick));
            }
        } else {
            self.sleeping_by_total.insert((slot.total_cores, brick));
        }
        if slot.active {
            self.idle.remove(&brick);
        } else {
            self.idle.insert(brick);
        }
    }

    /// Removes a brick from the index. `O(log n)`.
    pub fn remove(&mut self, brick: BrickId) {
        if let Some(old) = self.slots.remove(brick) {
            self.unindex(brick, &old);
            self.idle.remove(&brick);
        }
    }

    fn unindex(&mut self, brick: BrickId, old: &CapacitySlot) {
        if old.powered_on {
            self.powered_by_free.remove(&(old.free_cores, brick));
            self.powered_free_cores -= u64::from(old.free_cores);
            if old.active {
                self.active_by_free.remove(&(old.free_cores, brick));
            }
        } else {
            self.sleeping_by_total.remove(&(old.total_cores, brick));
        }
    }

    /// Bricks currently running no VM, ascending by id. Zero-allocation; the
    /// iterator borrows the index.
    pub fn idle_bricks(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.idle.iter().copied()
    }

    /// Placement views of every indexed brick, ascending by id (the
    /// reference scan input).
    pub fn views(&self) -> impl Iterator<Item = ComputeBrickView> + '_ {
        self.slots.iter().map(|(b, s)| s.view(b))
    }

    /// Lowest-id powered-on brick with at least `vcpus` free cores — the
    /// FirstFit query. Walks the rank entries at or above `vcpus`:
    /// `O(F log n)` where `F` is the number of fitting bricks.
    pub fn first_powered_fit(&self, vcpus: u32) -> Option<BrickId> {
        self.powered_by_free
            .range((vcpus, BrickId(0))..)
            .map(|&(_, b)| b)
            .min()
    }

    /// Fullest active brick (fewest free cores, lowest id on ties) that
    /// still fits `vcpus` — the power-aware packing query. `O(log n)`.
    pub fn fullest_active_fit(&self, vcpus: u32) -> Option<BrickId> {
        Self::fullest_fit(&self.active_by_free, vcpus)
    }

    /// Like [`CapacityIndex::fullest_active_fit`] but never returns
    /// `exclude` — the consolidation-target query (a migrating VM must not
    /// be "placed" back onto the brick it is leaving).
    pub fn fullest_active_fit_excluding(&self, vcpus: u32, exclude: BrickId) -> Option<BrickId> {
        self.active_by_free
            .range((vcpus, BrickId(0))..)
            .map(|&(_, b)| b)
            .find(|&b| b != exclude)
    }

    /// Like [`CapacityIndex::emptiest_powered_fit`] but never returns
    /// `exclude` — the hotspot-evacuation target query. Walks the free-core
    /// key groups downwards until one holds a brick other than `exclude`
    /// that fits, taking the lowest id within each group.
    pub fn emptiest_powered_fit_excluding(&self, vcpus: u32, exclude: BrickId) -> Option<BrickId> {
        let mut below = None;
        loop {
            // Highest remaining key group that still fits.
            let &(key, _) = match below {
                None => self
                    .powered_by_free
                    .range((vcpus, BrickId(0))..)
                    .next_back(),
                Some(k) => self
                    .powered_by_free
                    .range((vcpus, BrickId(0))..(k, BrickId(0)))
                    .next_back(),
            }?;
            let found = self
                .powered_by_free
                .range((key, BrickId(0))..)
                .take_while(|&&(k, _)| k == key)
                .map(|&(_, b)| b)
                .find(|&b| b != exclude);
            if found.is_some() {
                return found;
            }
            below = Some(key);
        }
    }

    /// Fullest powered-on brick that fits `vcpus` (power-aware fallback when
    /// no active brick fits). `O(log n)`.
    pub fn fullest_powered_fit(&self, vcpus: u32) -> Option<BrickId> {
        Self::fullest_fit(&self.powered_by_free, vcpus)
    }

    /// Emptiest powered-on brick (most free cores, lowest id on ties),
    /// provided it fits `vcpus` — the Balanced query. `O(log n)`.
    pub fn emptiest_powered_fit(&self, vcpus: u32) -> Option<BrickId> {
        let &(free, _) = self.powered_by_free.last()?;
        if free < vcpus {
            return None;
        }
        self.powered_by_free
            .range((free, BrickId(0))..)
            .next()
            .map(|&(_, b)| b)
    }

    /// Lowest-id sleeping brick whose full capacity could host `vcpus` —
    /// the wake-as-last-resort fallback shared by every policy. Walks the
    /// rank entries at or above `vcpus`: `O(C log n)` where `C` is the
    /// number of capable sleeping bricks.
    pub fn first_sleeping_capable(&self, vcpus: u32) -> Option<BrickId> {
        self.sleeping_by_total
            .range((vcpus, BrickId(0))..)
            .map(|&(_, b)| b)
            .min()
    }

    /// Like [`CapacityIndex::first_sleeping_capable`] but never returns
    /// `exclude` — the evacuation fallback must not "wake" the brick being
    /// evacuated (its power view can be off while it still hosts VMs).
    pub fn first_sleeping_capable_excluding(
        &self,
        vcpus: u32,
        exclude: BrickId,
    ) -> Option<BrickId> {
        self.sleeping_by_total
            .range((vcpus, BrickId(0))..)
            .map(|&(_, b)| b)
            .filter(|&b| b != exclude)
            .min()
    }

    fn fullest_fit(set: &RankSet, vcpus: u32) -> Option<BrickId> {
        set.range((vcpus, BrickId(0))..).next().map(|&(_, b)| b)
    }

    /// Sum of free cores over powered-on bricks. `O(1)` — this is the
    /// cluster digest's compute-capacity feed.
    pub fn powered_free_cores(&self) -> u64 {
        self.powered_free_cores
    }

    /// Most free cores on any single powered-on brick. `O(log n)`; the
    /// digest's "largest schedulable slot without a wake-up".
    pub fn largest_powered_free(&self) -> u32 {
        self.powered_by_free.last().map_or(0, |&(free, _)| free)
    }

    /// Largest total capacity among sleeping bricks. `O(log n)`; the
    /// digest's wake-as-last-resort screen.
    pub fn largest_sleeping_total(&self) -> u32 {
        self.sleeping_by_total.last().map_or(0, |&(total, _)| total)
    }

    /// Number of powered-on bricks. `O(1)`.
    pub fn powered_brick_count(&self) -> usize {
        self.powered_by_free.len()
    }

    /// Number of bricks running at least one VM. `O(1)`.
    pub fn active_brick_count(&self) -> usize {
        self.active_by_free.len()
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(CapacitySlot {
    total_cores,
    free_cores,
    active,
    powered_on,
});
dredbox_snap::snap_struct!(CapacityIndex {
    slots,
    powered_by_free,
    active_by_free,
    sleeping_by_total,
    idle,
    powered_free_cores,
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::PlacementPolicy;

    fn slot(total: u32, free: u32, active: bool, on: bool) -> CapacitySlot {
        CapacitySlot {
            total_cores: total,
            free_cores: free,
            active,
            powered_on: on,
        }
    }

    #[test]
    fn upsert_moves_bricks_between_buckets() {
        let mut index = CapacityIndex::new();
        assert!(index.is_empty());
        index.upsert(BrickId(0), slot(32, 32, false, true));
        index.upsert(BrickId(1), slot(32, 8, true, true));
        assert_eq!(index.len(), 2);
        assert_eq!(index.slot(BrickId(1)).unwrap().free_cores, 8);
        assert_eq!(index.idle_bricks().collect::<Vec<_>>(), vec![BrickId(0)]);
        assert_eq!(index.first_powered_fit(16), Some(BrickId(0)));
        assert_eq!(index.fullest_active_fit(8), Some(BrickId(1)));

        // Power brick 0 off: it leaves the powered buckets and becomes a
        // wake-up candidate.
        index.upsert(BrickId(0), slot(32, 32, false, false));
        assert_eq!(index.first_powered_fit(16), None);
        assert_eq!(index.first_sleeping_capable(16), Some(BrickId(0)));

        // Brick 1 releases its VM: it leaves the active bucket.
        index.upsert(BrickId(1), slot(32, 32, false, true));
        assert_eq!(index.fullest_active_fit(1), None);
        assert_eq!(
            index.idle_bricks().collect::<Vec<_>>(),
            vec![BrickId(0), BrickId(1)]
        );

        index.remove(BrickId(0));
        index.remove(BrickId(0)); // double remove is a no-op
        assert_eq!(index.len(), 1);
        assert_eq!(index.first_sleeping_capable(1), None);
    }

    #[test]
    fn queries_tie_break_on_lowest_brick_id() {
        let mut index = CapacityIndex::new();
        for id in [7u32, 3, 5] {
            index.upsert(BrickId(id), slot(32, 16, true, true));
        }
        assert_eq!(index.first_powered_fit(4), Some(BrickId(3)));
        assert_eq!(index.fullest_active_fit(4), Some(BrickId(3)));
        assert_eq!(index.emptiest_powered_fit(4), Some(BrickId(3)));
        assert_eq!(index.emptiest_powered_fit(17), None);
        for id in [9u32, 2] {
            index.upsert(BrickId(id), slot(32, 0, false, false));
        }
        assert_eq!(index.first_sleeping_capable(8), Some(BrickId(2)));
        // Exclusion skips past the lowest-id brick to the next capable one.
        assert_eq!(
            index.first_sleeping_capable_excluding(8, BrickId(2)),
            Some(BrickId(9))
        );
        assert_eq!(
            index.fullest_active_fit_excluding(4, BrickId(3)),
            Some(BrickId(5))
        );
        assert_eq!(
            index.emptiest_powered_fit_excluding(4, BrickId(3)),
            Some(BrickId(5))
        );
    }

    #[test]
    fn aggregates_track_power_transitions() {
        let mut index = CapacityIndex::new();
        index.upsert(BrickId(0), slot(32, 32, false, true));
        index.upsert(BrickId(1), slot(32, 8, true, true));
        index.upsert(BrickId(2), slot(16, 16, false, false));
        assert_eq!(index.powered_free_cores(), 40);
        assert_eq!(index.largest_powered_free(), 32);
        assert_eq!(index.largest_sleeping_total(), 16);
        assert_eq!(index.powered_brick_count(), 2);
        assert_eq!(index.active_brick_count(), 1);

        index.upsert(BrickId(0), slot(32, 32, false, false));
        assert_eq!(index.powered_free_cores(), 8);
        assert_eq!(index.largest_powered_free(), 8);
        assert_eq!(index.largest_sleeping_total(), 32);

        index.remove(BrickId(1));
        assert_eq!(index.powered_free_cores(), 0);
        assert_eq!(index.largest_powered_free(), 0);
        assert_eq!(index.active_brick_count(), 0);
    }

    #[test]
    fn views_round_trip_through_the_reference_scan() {
        let mut index = CapacityIndex::new();
        index.upsert(BrickId(0), slot(32, 2, true, true));
        index.upsert(BrickId(1), slot(32, 16, true, true));
        index.upsert(BrickId(2), slot(32, 32, false, true));
        let views: Vec<ComputeBrickView> = index.views().collect();
        for policy in [
            PlacementPolicy::FirstFit,
            PlacementPolicy::PowerAware,
            PlacementPolicy::Balanced,
        ] {
            for vcpus in [1, 8, 16, 32, 64] {
                assert_eq!(
                    policy.choose(&views, vcpus),
                    policy.choose_indexed(&index, vcpus),
                    "{policy:?} diverged at {vcpus} vcpus"
                );
            }
        }
    }
}
