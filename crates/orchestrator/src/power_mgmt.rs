//! Power management: powering off unused bricks.
//!
//! "Offer fine-grained power management and aggressive power-aware resource
//! management/scheduling" is a core project objective, and the TCO study of
//! Section VI quantifies its value: every brick (or, in a conventional
//! datacenter, every server) that runs nothing can be switched off.

use serde::{Deserialize, Serialize};

use dredbox_bricks::{Brick, BrickKind, Rack};
use dredbox_sim::units::Watts;

/// Summary of one power-management sweep over a rack.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerSweep {
    /// dCOMPUBRICKs powered off by the sweep.
    pub compute_off: usize,
    /// dMEMBRICKs powered off by the sweep.
    pub memory_off: usize,
    /// dACCELBRICKs powered off by the sweep.
    pub accelerator_off: usize,
}

impl PowerSweep {
    /// Total bricks powered off.
    pub fn total_off(&self) -> usize {
        self.compute_off + self.memory_off + self.accelerator_off
    }
}

/// The bricks a [`PowerManager::power_off_unused_tracked`] sweep newly
/// switched off, in rack iteration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NewlyOff {
    /// dCOMPUBRICKs this sweep powered off.
    pub compute: Vec<dredbox_bricks::BrickId>,
    /// dMEMBRICKs this sweep powered off.
    pub memory: Vec<dredbox_bricks::BrickId>,
    /// dACCELBRICKs this sweep powered off.
    pub accelerator: Vec<dredbox_bricks::BrickId>,
}

/// Rack-level power manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PowerManager;

impl PowerManager {
    /// Creates a power manager.
    pub fn new() -> Self {
        PowerManager
    }

    /// Powers off every brick that currently holds no allocation.
    pub fn power_off_unused(&self, rack: &mut Rack) -> PowerSweep {
        self.power_off_unused_where(rack, |_| true)
    }

    /// Powers off every unallocated brick `filter` selects — the per-shard
    /// variant used when sweeps are batched per event-engine shard: each
    /// shard sweeps only its own bricks, and a whole-rack sweep is the
    /// identity filter.
    pub fn power_off_unused_where(
        &self,
        rack: &mut Rack,
        filter: impl FnMut(dredbox_bricks::BrickId) -> bool,
    ) -> PowerSweep {
        self.power_off_unused_tracked(rack, filter).0
    }

    /// [`PowerManager::power_off_unused_where`] that also reports which
    /// compute and accelerator bricks this sweep newly switched off, so
    /// callers can sync dependent views (the SDM controller's availability
    /// indexes) without re-scanning the rack for every already-off brick.
    pub fn power_off_unused_tracked(
        &self,
        rack: &mut Rack,
        mut filter: impl FnMut(dredbox_bricks::BrickId) -> bool,
    ) -> (PowerSweep, NewlyOff) {
        let mut sweep = PowerSweep::default();
        let mut newly = NewlyOff::default();
        for brick in rack.bricks_mut() {
            if !brick.is_unused() || !filter(brick.id()) {
                continue;
            }
            // `power_off` succeeds on an already-off unused brick, and the
            // sweep counters deliberately keep counting those (they are the
            // long-standing scenario-visible totals); the `NewlyOff` lists
            // report only genuine on→off transitions so dependent ledgers
            // (controller availability, powered counts) never double-debit.
            match brick {
                Brick::Compute(b) => {
                    let was_on = b.power_state() != dredbox_bricks::PowerState::Off;
                    if b.power_off().is_ok() {
                        sweep.compute_off += 1;
                        if was_on {
                            newly.compute.push(b.id());
                        }
                    }
                }
                Brick::Memory(b) => {
                    let was_on = b.power_state() != dredbox_bricks::PowerState::Off;
                    if b.power_off().is_ok() {
                        sweep.memory_off += 1;
                        if was_on {
                            newly.memory.push(b.id());
                        }
                    }
                }
                Brick::Accelerator(b) => {
                    let was_on = b.power_state() != dredbox_bricks::PowerState::Off;
                    if b.power_off().is_ok() {
                        sweep.accelerator_off += 1;
                        if was_on {
                            newly.accelerator.push(b.id());
                        }
                    }
                }
            }
        }
        (sweep, newly)
    }

    /// Powers every brick in the rack back on.
    pub fn power_on_all(&self, rack: &mut Rack) {
        for brick in rack.bricks_mut() {
            match brick {
                Brick::Compute(b) => b.power_on(),
                Brick::Memory(b) => b.power_on(),
                Brick::Accelerator(b) => b.power_on(),
            }
        }
    }

    /// Current electrical draw of all bricks in the rack.
    pub fn rack_power(&self, rack: &Rack) -> Watts {
        rack.power_draw()
    }

    /// Fraction of bricks of `kind` that are currently unused (power-off
    /// candidates), in `[0, 1]`. Returns zero when the rack has no bricks
    /// of that kind.
    pub fn unused_fraction(&self, rack: &Rack, kind: BrickKind) -> f64 {
        let total = rack.brick_count(kind);
        if total == 0 {
            return 0.0;
        }
        rack.unused_brick_count(kind) as f64 / total as f64
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`). The manager is
// stateless, so it occupies zero bytes in a snapshot stream.
impl dredbox_snap::Snap for PowerManager {
    fn snap(&self, _out: &mut Vec<u8>) {}

    fn unsnap(_r: &mut dredbox_snap::Reader<'_>) -> Result<Self, dredbox_snap::SnapError> {
        Ok(PowerManager)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dredbox_bricks::{BrickId, Catalog};
    use dredbox_sim::units::ByteSize;

    fn rack_with_load() -> Rack {
        let mut rack = Catalog::prototype().build_rack(2, 2, 2, 1);
        // Load one compute brick and one memory brick.
        let compute = rack.brick_ids(BrickKind::Compute)[0];
        rack.brick_mut(compute)
            .unwrap()
            .as_compute_mut()
            .unwrap()
            .allocate_cores(2)
            .unwrap();
        let memory = rack.brick_ids(BrickKind::Memory)[0];
        rack.brick_mut(memory)
            .unwrap()
            .as_memory_mut()
            .unwrap()
            .export(compute, ByteSize::from_gib(8))
            .unwrap();
        rack
    }

    #[test]
    fn sweep_powers_off_only_unused_bricks() {
        let mut rack = rack_with_load();
        let pm = PowerManager::new();
        let before = pm.rack_power(&rack);
        let sweep = pm.power_off_unused(&mut rack);
        // 4 compute bricks (1 busy), 4 memory bricks (1 busy), 2 accelerators.
        assert_eq!(sweep.compute_off, 3);
        assert_eq!(sweep.memory_off, 3);
        assert_eq!(sweep.accelerator_off, 2);
        assert_eq!(sweep.total_off(), 8);
        let after = pm.rack_power(&rack);
        assert!(after.as_watts() < before.as_watts());

        pm.power_on_all(&mut rack);
        assert!(pm.rack_power(&rack).as_watts() >= before.as_watts() - 1e-9);
    }

    #[test]
    fn filtered_sweep_only_touches_selected_bricks() {
        let mut rack = rack_with_load();
        let pm = PowerManager::new();
        // Sweep only even brick ids; odd unused bricks must stay on.
        let sweep = pm.power_off_unused_where(&mut rack, |id| id.0 % 2 == 0);
        assert!(sweep.total_off() > 0);
        for brick in rack.bricks() {
            let state = match brick {
                Brick::Compute(b) => b.power_state(),
                Brick::Memory(b) => b.power_state(),
                Brick::Accelerator(b) => b.power_state(),
            };
            if brick.id().0 % 2 == 1 {
                assert_ne!(state, dredbox_bricks::PowerState::Off, "{}", brick.id());
            }
        }
        // The complementary sweep finishes the job: together the two
        // disjoint filters cover exactly the 8 sleepable bricks.
        let rest = pm.power_off_unused_where(&mut rack, |id| id.0 % 2 == 1);
        assert_eq!(sweep.total_off() + rest.total_off(), 8);
    }

    #[test]
    fn unused_fraction_tracks_load() {
        let rack = rack_with_load();
        let pm = PowerManager::new();
        assert!((pm.unused_fraction(&rack, BrickKind::Compute) - 0.75).abs() < 1e-12);
        assert!((pm.unused_fraction(&rack, BrickKind::Memory) - 0.75).abs() < 1e-12);
        assert!((pm.unused_fraction(&rack, BrickKind::Accelerator) - 1.0).abs() < 1e-12);
        let empty = Rack::new(dredbox_bricks::RackId(9));
        assert_eq!(pm.unused_fraction(&empty, BrickKind::Compute), 0.0);
        let _ = BrickId(0);
    }
}
