//! SDM agents: the per-dCOMPUBRICK arm of the orchestrator.
//!
//! An SDM agent runs on the OS of each dCOMPUBRICK and executes the
//! configurations the SDM controller pushes: mapping remote segments into
//! the Transaction Glue Logic's RMST, and (on the experimental packet path)
//! programming the on-brick packet switch lookup tables.

use serde::{Deserialize, Serialize};

use dredbox_bricks::{BrickId, PortId};
use dredbox_interconnect::rmst::RmstEntry;
use dredbox_interconnect::{InterconnectError, LatencyConfig, OnBrickSwitch, TransactionGlueLogic};
use dredbox_memory::{MemorySegment, RemoteWindow};
use dredbox_sim::time::SimDuration;
use dredbox_sim::units::ByteSize;

/// The result of applying one attach configuration: where the segment was
/// mapped, and what the control path cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttachOutcome {
    /// RMST base address the segment was installed at (the detach handle).
    pub rmst_base: u64,
    /// Control-path time spent installing the mapping.
    pub control_time: SimDuration,
}

/// The SDM agent (plus the hardware state it manages) for one compute brick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdmAgent {
    brick: BrickId,
    tgl: TransactionGlueLogic,
    packet_switch: OnBrickSwitch,
    window: RemoteWindow,
    /// Time to write one glue-logic / RMST configuration over the control
    /// interface.
    glue_config_latency: SimDuration,
    /// Time to update one packet-switch lookup-table entry.
    switch_table_latency: SimDuration,
}

impl SdmAgent {
    /// Creates the agent for `brick`, with an RMST of `rmst_entries` entries
    /// and a remote window of `window_capacity`.
    pub fn new(
        brick: BrickId,
        config: &LatencyConfig,
        rmst_entries: usize,
        window_capacity: ByteSize,
    ) -> Self {
        SdmAgent {
            brick,
            tgl: TransactionGlueLogic::new(brick, config, rmst_entries),
            packet_switch: OnBrickSwitch::new(brick, config),
            window: RemoteWindow::new(window_capacity),
            glue_config_latency: SimDuration::from_millis(2),
            switch_table_latency: SimDuration::from_micros(500),
        }
    }

    /// The brick this agent manages.
    pub fn brick(&self) -> BrickId {
        self.brick
    }

    /// The Transaction Glue Logic state.
    pub fn tgl(&self) -> &TransactionGlueLogic {
        &self.tgl
    }

    /// The on-brick packet switch state.
    pub fn packet_switch(&self) -> &OnBrickSwitch {
        &self.packet_switch
    }

    /// Remote memory currently mapped for this brick.
    pub fn mapped_remote_memory(&self) -> ByteSize {
        self.tgl.mapped_remote_memory()
    }

    /// Applies an attach configuration for `segment`, reachable through
    /// local port `port`: carves a window range, installs the RMST entry and
    /// programs the packet-switch route towards the hosting dMEMBRICK.
    /// Returns where the segment was mapped and the control-path time spent,
    /// so the controller never has to re-enumerate the RMST to learn the
    /// base it just installed.
    ///
    /// # Errors
    ///
    /// Propagates window-exhaustion and RMST errors; nothing is installed on
    /// failure.
    pub fn apply_attach(
        &mut self,
        segment: &MemorySegment,
        port: PortId,
    ) -> Result<AttachOutcome, AgentError> {
        let base = self
            .window
            .carve(segment.size)
            .map_err(AgentError::Window)?;
        let entry = RmstEntry {
            base: base.0,
            size: segment.size,
            destination: segment.membrick,
            port,
        };
        if let Err(e) = self.tgl.map_segment(entry) {
            // Roll back the window carve.
            let _ = self.window.release(base, segment.size);
            return Err(AgentError::Rmst(e));
        }
        self.packet_switch.program_route(segment.membrick, port);
        Ok(AttachOutcome {
            rmst_base: base.0,
            control_time: self.glue_config_latency + self.switch_table_latency,
        })
    }

    /// Applies a detach configuration for a segment previously attached at
    /// RMST base `rmst_base`. Returns the control-path time spent.
    ///
    /// # Errors
    ///
    /// Returns an error if no segment is mapped at that base.
    pub fn apply_detach(&mut self, rmst_base: u64) -> Result<SimDuration, AgentError> {
        let entry = self
            .tgl
            .unmap_segment(rmst_base)
            .map_err(AgentError::Rmst)?;
        let _ = self
            .window
            .release(dredbox_memory::GlobalAddress(entry.base), entry.size);
        // Only drop the switch route if no other segment still targets the
        // same dMEMBRICK.
        if self.tgl.rmst().towards_count(entry.destination) == 0 {
            self.packet_switch.remove_route(entry.destination);
        }
        Ok(self.glue_config_latency + self.switch_table_latency)
    }

    /// The RMST bases currently mapped, ascending by base address (the
    /// table is base-ordered, not attach-ordered). To detach exactly what
    /// an attach installed, keep the [`AttachOutcome::rmst_base`] it
    /// returned instead of re-enumerating the table.
    pub fn mapped_bases(&self) -> Vec<u64> {
        self.tgl.rmst().iter().map(|e| e.base).collect()
    }
}

/// Errors the agent can surface while applying configurations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AgentError {
    /// The brick's remote window is exhausted.
    Window(dredbox_memory::MemoryError),
    /// The RMST rejected the mapping.
    Rmst(InterconnectError),
}

impl std::fmt::Display for AgentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentError::Window(e) => write!(f, "remote window: {e}"),
            AgentError::Rmst(e) => write!(f, "rmst: {e}"),
        }
    }
}

impl std::error::Error for AgentError {}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(SdmAgent {
    brick,
    tgl,
    packet_switch,
    window,
    glue_config_latency,
    switch_table_latency,
});

#[cfg(test)]
mod tests {
    use super::*;
    use dredbox_memory::SegmentId;

    fn agent() -> SdmAgent {
        SdmAgent::new(
            BrickId(0),
            &LatencyConfig::dredbox_default(),
            8,
            ByteSize::from_gib(64),
        )
    }

    fn segment(id: u64, membrick: u32, gib: u64) -> MemorySegment {
        MemorySegment {
            id: SegmentId(id),
            membrick: BrickId(membrick),
            offset: 0,
            size: ByteSize::from_gib(gib),
            owner: BrickId(0),
        }
    }

    #[test]
    fn attach_installs_rmst_and_switch_route() {
        let mut agent = agent();
        assert_eq!(agent.brick(), BrickId(0));
        let seg = segment(1, 10, 8);
        let port = PortId::new(BrickId(0), 1);
        let outcome = agent.apply_attach(&seg, port).unwrap();
        assert!(outcome.control_time.as_millis_f64() >= 2.0);
        assert_eq!(agent.mapped_remote_memory(), ByteSize::from_gib(8));
        assert_eq!(agent.tgl().rmst().len(), 1);
        assert_eq!(agent.packet_switch().route(BrickId(10)).unwrap(), port);
        assert_eq!(agent.mapped_bases(), vec![outcome.rmst_base]);
    }

    #[test]
    fn detach_removes_state_and_switch_route_when_last() {
        let mut agent = agent();
        let port = PortId::new(BrickId(0), 1);
        agent.apply_attach(&segment(1, 10, 8), port).unwrap();
        agent.apply_attach(&segment(2, 10, 4), port).unwrap();
        let bases = agent.mapped_bases();
        assert_eq!(bases.len(), 2);

        agent.apply_detach(bases[0]).unwrap();
        // A segment towards brick 10 remains, so the route survives.
        assert!(agent.packet_switch().route(BrickId(10)).is_ok());
        agent.apply_detach(bases[1]).unwrap();
        assert!(agent.packet_switch().route(BrickId(10)).is_err());
        assert_eq!(agent.mapped_remote_memory(), ByteSize::ZERO);
        assert!(matches!(
            agent.apply_detach(bases[0]),
            Err(AgentError::Rmst(_))
        ));
    }

    #[test]
    fn rmst_exhaustion_rolls_back_the_window() {
        let mut small = SdmAgent::new(
            BrickId(0),
            &LatencyConfig::dredbox_default(),
            1,
            ByteSize::from_gib(64),
        );
        let port = PortId::new(BrickId(0), 0);
        small.apply_attach(&segment(1, 10, 4), port).unwrap();
        let before = small.mapped_remote_memory();
        assert!(matches!(
            small.apply_attach(&segment(2, 11, 4), port),
            Err(AgentError::Rmst(_))
        ));
        assert_eq!(small.mapped_remote_memory(), before);
    }

    #[test]
    fn window_exhaustion_is_reported() {
        let mut tiny = SdmAgent::new(
            BrickId(0),
            &LatencyConfig::dredbox_default(),
            8,
            ByteSize::from_gib(4),
        );
        let port = PortId::new(BrickId(0), 0);
        assert!(matches!(
            tiny.apply_attach(&segment(1, 10, 8), port),
            Err(AgentError::Window(_))
        ));
        let err = AgentError::Window(dredbox_memory::MemoryError::EmptyRequest);
        assert!(err.to_string().contains("remote window"));
    }
}
