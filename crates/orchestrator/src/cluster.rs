//! Two-level orchestration: a cluster controller federating many racks.
//!
//! The paper's SDM controller is deliberately rack-scoped ("resource
//! reservation and dynamic reconfiguration *within a rack*"), but the
//! dReDBox vision is a disaggregated datacenter. The [`ClusterController`]
//! is the level above: it owns N racks — each still managed by its own
//! [`crate::SdmController`] — and makes *inter-rack* decisions from
//! per-rack [`RackDigest`]s instead of per-brick state.
//!
//! ## The digest trick, one level up
//!
//! [`crate::CapacityIndex`] made per-brick availability inspection
//! incremental; the cluster applies the same move to racks. Every admit,
//! release, scale, migrate and power transition refreshes the owning
//! rack's digest (a handful of `O(1)`/`O(log bricks)` reads off the rack's
//! own indexes), and cluster routing then navigates rank sets keyed by
//! `(free cores, rack)`. A routing decision therefore costs
//! `O(log racks)` in the typical case and never scans per-brick state —
//! per-decision cost stays flat as racks are added.
//!
//! ## Admission screens are optimistic
//!
//! [`RackDigest::admits`] must never reject a request the rack itself
//! would accept, because for a single-rack cluster the controller has to
//! be decision-for-decision transparent (the golden-snapshot suite pins
//! this). The compute screen is exact — placement succeeds iff some
//! powered brick has enough free cores or some sleeping brick is large
//! enough, which is precisely what the digest records — while the memory
//! screen (`free_memory >= request`) is necessary but not sufficient
//! under fragmentation. The rack's own controller stays the authority:
//! routing proposes, the rack's admission decides, and a refusal falls
//! through to the next rack in preference order (spillover).
//!
//! ## Power budgets
//!
//! A rack whose *provisioned* power — powered-on brick count per kind
//! times that kind's active draw — has reached its budget is excluded
//! from routing (admission control), so new load lands on racks with
//! headroom and sweeps can pull over-budget racks back down. Provisioned
//! draw is the TCO study's currency: it upper-bounds the rack's
//! electrical draw the way Section VI's "units that cannot be switched
//! off" bound the conventional datacenter's.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use dredbox_bricks::RackId;
use dredbox_sim::time::SimDuration;
use dredbox_sim::units::{ByteSize, Watts};

use crate::placement::PlacementPolicy;

/// A cluster rank set: flat `(key, rack)` pairs ordered `(key asc, id
/// asc)`, the same shape as the brick-level rank sets one layer down.
type RackRankSet = BTreeSet<(u64, RackId)>;

/// The capacity facts of one rack, as digested for cluster decisions.
///
/// Every field is derivable in `O(1)`/`O(log bricks)` from the rack's own
/// incrementally maintained indexes, so keeping the digest in lockstep
/// adds constant work per orchestration operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RackDigest {
    /// Sum of free cores over powered-on dCOMPUBRICKs.
    pub free_cores: u64,
    /// Most free cores on any single powered-on dCOMPUBRICK — the largest
    /// VM the rack can place without a wake-up.
    pub largest_free_cores: u32,
    /// Largest total capacity among sleeping dCOMPUBRICKs — the largest VM
    /// the rack can place by waking a brick.
    pub largest_sleeping_cores: u32,
    /// Free bytes across the rack's memory pool.
    pub free_memory_bytes: u64,
    /// Largest contiguous free block on any single dMEMBRICK.
    pub largest_segment_bytes: u64,
    /// dACCELBRICKs currently streaming no offload session.
    pub idle_accels: u32,
    /// Total dACCELBRICKs in the rack.
    pub accel_bricks: u32,
    /// dCOMPUBRICKs running at least one VM.
    pub active_bricks: u32,
    /// Powered-on bricks of any kind.
    pub powered_bricks: u32,
    /// Provisioned electrical draw in milliwatts: powered-on brick counts
    /// per kind times that kind's active draw. Integer so digest equality
    /// is bitwise.
    pub provisioned_milliwatts: u64,
}

impl RackDigest {
    /// Whether the rack can possibly place a VM of `vcpus` cores and
    /// `memory` bytes. Optimistic by design (see the module docs): exact
    /// on compute, necessary-but-not-sufficient on memory.
    pub fn admits(&self, vcpus: u32, memory: ByteSize) -> bool {
        let compute_ok = self.largest_free_cores >= vcpus || self.largest_sleeping_cores >= vcpus;
        compute_ok && self.free_memory_bytes >= memory.as_bytes()
    }

    /// Free bytes across the rack's memory pool.
    pub fn free_memory(&self) -> ByteSize {
        ByteSize::from_bytes(self.free_memory_bytes)
    }

    /// Largest contiguous free block on any single dMEMBRICK.
    pub fn largest_segment(&self) -> ByteSize {
        ByteSize::from_bytes(self.largest_segment_bytes)
    }

    /// Provisioned electrical draw.
    pub fn provisioned_power(&self) -> Watts {
        Watts::new(self.provisioned_milliwatts as f64 / 1e3)
    }
}

/// Service-time model for the cluster tier, mirroring
/// [`crate::SdmTimings`] one level up.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterTimings {
    /// Digest consultation and routing decision at the cluster controller.
    pub route: SimDuration,
    /// Handing a routed request down to the chosen rack's SDM controller
    /// (one control-network RPC between orchestration tiers).
    pub hop: SimDuration,
    /// Cadence of the cluster control loop: how often the front door
    /// dispatches queued arrivals and each rack republishes its capacity
    /// digest. This is the batching grain of cluster decisions — and, on
    /// the threaded runner, the natural epoch width between rack workers.
    #[serde(default = "ClusterTimings::default_control_interval")]
    pub control_interval: SimDuration,
}

impl ClusterTimings {
    /// Defaults in line with the SDM controller's REST-over-control-network
    /// timings: routing is an in-memory index read, the hop is an RPC, and
    /// the control loop ticks on a datacenter-telemetry cadence.
    pub fn dredbox_default() -> Self {
        ClusterTimings {
            route: SimDuration::from_micros(50),
            hop: SimDuration::from_micros(500),
            control_interval: Self::default_control_interval(),
        }
    }

    fn default_control_interval() -> SimDuration {
        SimDuration::from_secs(10)
    }
}

impl Default for ClusterTimings {
    fn default() -> Self {
        ClusterTimings::dredbox_default()
    }
}

/// Outcome of one routing decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackRoute {
    /// The preferred rack, or `None` when no schedulable rack passes the
    /// digest screens.
    pub rack: Option<RackId>,
    /// Racks that passed the capacity screen but were skipped because
    /// their provisioned power had reached the rack budget.
    pub power_deferrals: u32,
}

/// The cluster-level orchestrator: per-rack digests plus rank sets over
/// them, navigated by the same placement policies the racks use one level
/// down.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ClusterController {
    /// Rack-level placement policy (mirrors the per-rack policy).
    policy: PlacementPolicy,
    /// Authoritative digest per rack, so updates can unindex the old one.
    digests: BTreeMap<RackId, RackDigest>,
    /// All racks ranked by powered free cores.
    by_free: RackRankSet,
    /// Racks hosting at least one VM, ranked by powered free cores — the
    /// power-aware packing order.
    active_by_free: RackRankSet,
    /// Racks excluded from admission routing (draining or drained).
    unschedulable: BTreeSet<RackId>,
    /// Per-rack provisioned-power budget; `None` disables admission-time
    /// power screening.
    budget_milliwatts: Option<u64>,
}

impl ClusterController {
    /// Creates an empty controller routing with `policy`.
    pub fn new(policy: PlacementPolicy) -> Self {
        ClusterController {
            policy,
            ..ClusterController::default()
        }
    }

    /// The rack-level placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Number of federated racks.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// Whether no rack is federated.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// The digest of a rack, if federated.
    pub fn digest(&self, rack: RackId) -> Option<&RackDigest> {
        self.digests.get(&rack)
    }

    /// All digests, ascending by rack id.
    pub fn digests(&self) -> impl Iterator<Item = (RackId, &RackDigest)> {
        self.digests.iter().map(|(&r, d)| (r, d))
    }

    /// Sets or clears the per-rack provisioned-power budget.
    pub fn set_rack_budget(&mut self, budget: Option<Watts>) {
        self.budget_milliwatts = budget.map(|w| (w.as_watts() * 1e3).round() as u64);
    }

    /// The per-rack provisioned-power budget, if any.
    pub fn rack_budget(&self) -> Option<Watts> {
        self.budget_milliwatts.map(|mw| Watts::new(mw as f64 / 1e3))
    }

    /// Marks a rack as (un)schedulable. Unschedulable racks keep their
    /// digests maintained but are skipped by admission routing — the rack
    /// drain primitive.
    pub fn set_schedulable(&mut self, rack: RackId, schedulable: bool) {
        if schedulable {
            self.unschedulable.remove(&rack);
        } else {
            self.unschedulable.insert(rack);
        }
    }

    /// Whether admissions may be routed to `rack`.
    pub fn is_schedulable(&self, rack: RackId) -> bool {
        !self.unschedulable.contains(&rack)
    }

    /// Readmits a previously drained rack into admission routing — the
    /// inverse of the [`ClusterController::set_schedulable`]`(rack, false)`
    /// drain primitive, used when a serviced rack comes back.
    ///
    /// Returns `true` iff the rack is federated *and* was actually drained;
    /// undraining an unknown rack or one that was never drained is a
    /// bit-identical no-op returning `false`.
    pub fn undrain_rack(&mut self, rack: RackId) -> bool {
        if !self.digests.contains_key(&rack) || self.is_schedulable(rack) {
            return false;
        }
        self.set_schedulable(rack, true);
        true
    }

    /// Inserts or replaces a rack's digest, keeping the rank sets in sync.
    /// `O(log racks)`.
    pub fn upsert(&mut self, rack: RackId, digest: RackDigest) {
        if let Some(old) = self.digests.insert(rack, digest) {
            self.by_free.remove(&(old.free_cores, rack));
            if old.active_bricks > 0 {
                self.active_by_free.remove(&(old.free_cores, rack));
            }
        }
        self.by_free.insert((digest.free_cores, rack));
        if digest.active_bricks > 0 {
            self.active_by_free.insert((digest.free_cores, rack));
        }
    }

    /// Removes a rack from the federation. `O(log racks)`.
    pub fn remove(&mut self, rack: RackId) {
        if let Some(old) = self.digests.remove(&rack) {
            self.by_free.remove(&(old.free_cores, rack));
            if old.active_bricks > 0 {
                self.active_by_free.remove(&(old.free_cores, rack));
            }
        }
        self.unschedulable.remove(&rack);
    }

    /// Total provisioned draw across the federation — the figure the TCO
    /// study compares against the all-on baseline. `O(racks)`.
    pub fn provisioned_power(&self) -> Watts {
        let mw: u64 = self
            .digests
            .values()
            .map(|d| d.provisioned_milliwatts)
            .sum();
        Watts::new(mw as f64 / 1e3)
    }

    /// Per-rack provisioned draws, ascending by rack id — the
    /// `dredbox-tco` fleet-power feed. `O(racks)`.
    pub fn provisioned_per_rack(&self) -> Vec<Watts> {
        self.digests
            .values()
            .map(|d| d.provisioned_power())
            .collect()
    }

    fn headroom_ok(&self, digest: &RackDigest) -> bool {
        match self.budget_milliwatts {
            Some(budget) => digest.provisioned_milliwatts < budget,
            None => true,
        }
    }

    /// Routes one admission: the first rack in the policy's preference
    /// order that is schedulable, passes the capacity screen and has power
    /// headroom. `O(log racks)` in the typical case — digests only, never
    /// per-brick state.
    pub fn route(&self, vcpus: u32, memory: ByteSize) -> RackRoute {
        let mut power_deferrals = 0;
        let mut rack = None;
        for candidate in self.preference_order(None) {
            let digest = &self.digests[&candidate];
            if !digest.admits(vcpus, memory) {
                continue;
            }
            if !self.headroom_ok(digest) {
                power_deferrals += 1;
                continue;
            }
            rack = Some(candidate);
            break;
        }
        RackRoute {
            rack,
            power_deferrals,
        }
    }

    /// The full spillover order for one admission: every schedulable rack
    /// passing both screens, best first, optionally excluding one rack
    /// (the drain source must not receive its own evacuees).
    pub fn spillover_order(
        &self,
        vcpus: u32,
        memory: ByteSize,
        exclude: Option<RackId>,
    ) -> Vec<RackId> {
        self.preference_order(exclude)
            .filter(|r| {
                let digest = &self.digests[r];
                digest.admits(vcpus, memory) && self.headroom_ok(digest)
            })
            .collect()
    }

    /// Schedulable racks in the policy's preference order. Rack-level
    /// mirror of the brick-level policies: FirstFit walks rack ids,
    /// PowerAware packs the fullest already-active rack first, Balanced
    /// spreads onto the emptiest rack.
    fn preference_order(&self, exclude: Option<RackId>) -> Box<dyn Iterator<Item = RackId> + '_> {
        let admissible = move |r: &RackId| exclude != Some(*r) && !self.unschedulable.contains(r);
        match self.policy {
            PlacementPolicy::FirstFit => {
                Box::new(self.digests.keys().copied().filter(move |r| admissible(r)))
            }
            PlacementPolicy::PowerAware => {
                // Fullest active rack first, then the remaining racks
                // fullest-first (all-idle racks tie at full free cores and
                // fall back to id order).
                let active = self
                    .active_by_free
                    .iter()
                    .map(|&(_, r)| r)
                    .filter(move |r| admissible(r));
                let rest = self.by_free.iter().map(|&(_, r)| r).filter(move |r| {
                    admissible(r) && self.digests.get(r).is_some_and(|d| d.active_bricks == 0)
                });
                Box::new(active.chain(rest))
            }
            PlacementPolicy::Balanced => Box::new(
                self.by_free
                    .iter()
                    .rev()
                    .map(|&(_, r)| r)
                    .filter(move |r| admissible(r)),
            ),
        }
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(RackDigest {
    free_cores,
    largest_free_cores,
    largest_sleeping_cores,
    free_memory_bytes,
    largest_segment_bytes,
    idle_accels,
    accel_bricks,
    active_bricks,
    powered_bricks,
    provisioned_milliwatts,
});
dredbox_snap::snap_struct!(ClusterController {
    policy,
    digests,
    by_free,
    active_by_free,
    unschedulable,
    budget_milliwatts,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(free: u64, largest: u32, active: u32, mem_gib: u64, mw: u64) -> RackDigest {
        RackDigest {
            free_cores: free,
            largest_free_cores: largest,
            largest_sleeping_cores: 0,
            free_memory_bytes: ByteSize::from_gib(mem_gib).as_bytes(),
            largest_segment_bytes: ByteSize::from_gib(mem_gib).as_bytes(),
            idle_accels: 0,
            accel_bricks: 0,
            active_bricks: active,
            powered_bricks: 4,
            provisioned_milliwatts: mw,
        }
    }

    #[test]
    fn power_aware_routing_packs_the_fullest_active_rack() {
        let mut cluster = ClusterController::new(PlacementPolicy::PowerAware);
        cluster.upsert(RackId(0), digest(64, 32, 0, 64, 100_000));
        cluster.upsert(RackId(1), digest(16, 16, 2, 64, 100_000));
        cluster.upsert(RackId(2), digest(40, 32, 1, 64, 100_000));
        // Fullest active rack that fits wins; an idle rack only as fallback.
        assert_eq!(
            cluster.route(8, ByteSize::from_gib(1)).rack,
            Some(RackId(1))
        );
        assert_eq!(
            cluster.route(24, ByteSize::from_gib(1)).rack,
            Some(RackId(2))
        );
        assert_eq!(
            cluster.route(32, ByteSize::from_gib(1)).rack,
            Some(RackId(2))
        );
        // Nothing fits 64 cores on one brick anywhere.
        assert_eq!(cluster.route(64, ByteSize::from_gib(1)).rack, None);
        // Spillover order lists every admissible rack, best first.
        assert_eq!(
            cluster.spillover_order(8, ByteSize::from_gib(1), None),
            vec![RackId(1), RackId(2), RackId(0)]
        );
        assert_eq!(
            cluster.spillover_order(8, ByteSize::from_gib(1), Some(RackId(1))),
            vec![RackId(2), RackId(0)]
        );
    }

    #[test]
    fn balanced_and_first_fit_mirror_their_brick_level_policies() {
        let mut cluster = ClusterController::new(PlacementPolicy::Balanced);
        cluster.upsert(RackId(0), digest(16, 16, 1, 64, 0));
        cluster.upsert(RackId(1), digest(48, 32, 1, 64, 0));
        assert_eq!(
            cluster.route(8, ByteSize::from_gib(1)).rack,
            Some(RackId(1))
        );
        let mut cluster = ClusterController::new(PlacementPolicy::FirstFit);
        cluster.upsert(RackId(0), digest(16, 16, 1, 64, 0));
        cluster.upsert(RackId(1), digest(48, 32, 1, 64, 0));
        assert_eq!(
            cluster.route(8, ByteSize::from_gib(1)).rack,
            Some(RackId(0))
        );
    }

    #[test]
    fn power_budget_excludes_racks_without_headroom() {
        let mut cluster = ClusterController::new(PlacementPolicy::PowerAware);
        cluster.upsert(RackId(0), digest(16, 16, 2, 64, 900_000));
        cluster.upsert(RackId(1), digest(64, 32, 0, 64, 100_000));
        cluster.set_rack_budget(Some(Watts::new(500.0)));
        let route = cluster.route(8, ByteSize::from_gib(1));
        assert_eq!(route.rack, Some(RackId(1)));
        assert_eq!(route.power_deferrals, 1);
        // Without a budget the packed rack wins again.
        cluster.set_rack_budget(None);
        let route = cluster.route(8, ByteSize::from_gib(1));
        assert_eq!(route.rack, Some(RackId(0)));
        assert_eq!(route.power_deferrals, 0);
        assert!((cluster.provisioned_power().as_watts() - 1000.0).abs() < 1e-9);
        assert_eq!(cluster.provisioned_per_rack().len(), 2);
    }

    #[test]
    fn unschedulable_racks_are_skipped_and_memory_screens_apply() {
        let mut cluster = ClusterController::new(PlacementPolicy::PowerAware);
        cluster.upsert(RackId(0), digest(16, 16, 2, 1, 0));
        cluster.upsert(RackId(1), digest(64, 32, 1, 64, 0));
        // Rack 0 packs tighter but cannot hold 8 GiB.
        assert_eq!(
            cluster.route(8, ByteSize::from_gib(8)).rack,
            Some(RackId(1))
        );
        cluster.set_schedulable(RackId(1), false);
        assert!(!cluster.is_schedulable(RackId(1)));
        assert_eq!(cluster.route(8, ByteSize::from_gib(8)).rack, None);
        cluster.set_schedulable(RackId(1), true);
        assert_eq!(
            cluster.route(8, ByteSize::from_gib(8)).rack,
            Some(RackId(1))
        );
        cluster.remove(RackId(1));
        assert_eq!(cluster.len(), 1);
        assert_eq!(cluster.route(8, ByteSize::from_gib(8)).rack, None);
    }

    #[test]
    fn undrain_is_a_noop_unless_the_rack_was_actually_drained() {
        let mut cluster = ClusterController::new(PlacementPolicy::PowerAware);
        cluster.upsert(RackId(0), digest(16, 16, 2, 64, 0));
        cluster.upsert(RackId(1), digest(64, 32, 1, 64, 0));

        // Undraining an unknown rack, or one that was never drained, must
        // leave the controller bit-identical.
        let before = cluster.clone();
        assert!(!cluster.undrain_rack(RackId(7)));
        assert!(!cluster.undrain_rack(RackId(0)));
        assert_eq!(cluster, before);

        // A real drain/undrain round-trips.
        cluster.set_schedulable(RackId(1), false);
        assert!(!cluster.is_schedulable(RackId(1)));
        assert!(cluster.undrain_rack(RackId(1)));
        assert!(cluster.is_schedulable(RackId(1)));
        assert_eq!(cluster, before);
        assert!(!cluster.undrain_rack(RackId(1)));
    }

    #[test]
    fn upsert_replaces_the_old_rank_entries() {
        let mut cluster = ClusterController::new(PlacementPolicy::Balanced);
        cluster.upsert(RackId(0), digest(64, 32, 0, 64, 0));
        cluster.upsert(RackId(1), digest(32, 32, 1, 64, 0));
        assert_eq!(
            cluster.route(8, ByteSize::from_gib(1)).rack,
            Some(RackId(0))
        );
        // Rack 0 fills up; the rank sets must follow the new digest.
        cluster.upsert(RackId(0), digest(4, 4, 3, 64, 0));
        assert_eq!(
            cluster.route(8, ByteSize::from_gib(1)).rack,
            Some(RackId(1))
        );
        assert_eq!(cluster.digest(RackId(0)).unwrap().free_cores, 4);
    }
}
