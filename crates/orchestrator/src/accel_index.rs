//! Incrementally maintained accelerator-availability index.
//!
//! The dACCELBRICK scheduling questions mirror the compute-placement ones
//! the [`crate::capacity::CapacityIndex`] answers, with one twist: the
//! reconfigurable slot is *stateful*. A brick already programmed with the
//! needed bitstream serves an offload without paying the PCAP partial
//! reconfiguration, so the placement order is
//!
//! 1. a powered-on brick **already loaded** with the requested kernel that
//!    still has a free streaming slot (bitstream reuse);
//! 2. the **cheapest reprogram**: the powered-on brick with the fastest
//!    PCAP port whose slot is empty (nothing evicted), then one whose
//!    loaded-but-idle kernel can be swapped out;
//! 3. a **sleeping** brick, woken as a last resort (its PR state was lost
//!    on power-down, so it always pays the programming).
//!
//! Every bucket orders bricks by [`BrickId`], preserving the lowest-id
//! tie-breaks the scenario engine's same-seed replay guarantee depends on.
//! The index is kept in lockstep by every offload begin/end, bitstream
//! load and power transition; `tests/offload_invariants.rs` asserts it
//! equals a from-scratch rebuild after arbitrary interleavings.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use dredbox_bricks::BrickId;

use crate::bucket::{bucket_insert, bucket_remove};

/// The scheduling facts of one accelerator brick, as indexed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccelSlot {
    /// Name of the bitstream programmed into the reconfigurable slot.
    pub loaded: Option<String>,
    /// Offload sessions currently streaming through the kernel.
    pub active_sessions: u32,
    /// Concurrent streaming slots (one per GTH transceiver towards the
    /// rack interconnect).
    pub session_capacity: u32,
    /// Effective PCAP programming bandwidth, in bits per second; the
    /// reprogram-cost key (higher is cheaper).
    pub pcap_bps: u64,
    /// Whether the brick is powered on.
    pub powered_on: bool,
}

/// The incrementally maintained availability view over all accelerator
/// bricks.
///
/// ```
/// use dredbox_orchestrator::accel_index::{AccelIndex, AccelSlot};
/// use dredbox_bricks::BrickId;
///
/// let mut index = AccelIndex::new();
/// index.upsert(BrickId(20), AccelSlot {
///     loaded: Some("sobel".to_owned()),
///     active_sessions: 1,
///     session_capacity: 4,
///     pcap_bps: 3_200_000_000,
///     powered_on: true,
/// });
/// // A second sobel offload reuses the programmed brick.
/// assert_eq!(index.loaded_fit("sobel"), Some(BrickId(20)));
/// // A different kernel needs a reprogram target; none is free here.
/// assert_eq!(index.loaded_fit("aes"), None);
/// assert_eq!(index.fastest_empty(), None);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AccelIndex {
    /// Authoritative slot per brick, so updates can unindex the old state.
    slots: BTreeMap<BrickId, AccelSlot>,
    /// Powered-on bricks with a free streaming slot, bucketed by loaded
    /// bitstream name (the reuse query).
    loaded_available: BTreeMap<String, BTreeSet<BrickId>>,
    /// Powered-on bricks with an empty slot, bucketed by PCAP bandwidth
    /// (cheapest program first — highest bandwidth, then lowest id).
    empty_by_pcap: BTreeMap<u64, BTreeSet<BrickId>>,
    /// Powered-on bricks whose loaded kernel streams no session and can be
    /// swapped, bucketed by PCAP bandwidth.
    idle_loaded_by_pcap: BTreeMap<u64, BTreeSet<BrickId>>,
    /// Powered-off bricks, bucketed by PCAP bandwidth (wake-up candidates).
    sleeping_by_pcap: BTreeMap<u64, BTreeSet<BrickId>>,
    /// Bricks streaming no session (any power state), in id order — the
    /// power-off candidates.
    idle: BTreeSet<BrickId>,
}

impl AccelIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        AccelIndex::default()
    }

    /// Number of indexed bricks.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no brick is indexed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The indexed slot of a brick, if present.
    pub fn slot(&self, brick: BrickId) -> Option<&AccelSlot> {
        self.slots.get(&brick)
    }

    /// The indexed slots of every brick, ascending by id (the authoritative
    /// scan a from-scratch rebuild starts from).
    pub fn slots(&self) -> impl Iterator<Item = (BrickId, &AccelSlot)> + '_ {
        self.slots.iter().map(|(b, s)| (*b, s))
    }

    /// Inserts or replaces a brick's slot, keeping every bucket in sync.
    /// `O(log n)`.
    pub fn upsert(&mut self, brick: BrickId, slot: AccelSlot) {
        if let Some(old) = self.slots.insert(brick, slot.clone()) {
            self.unindex(brick, &old);
        }
        if slot.powered_on {
            match &slot.loaded {
                Some(name) => {
                    if slot.active_sessions < slot.session_capacity {
                        bucket_insert(&mut self.loaded_available, name.clone(), brick);
                    }
                    if slot.active_sessions == 0 {
                        bucket_insert(&mut self.idle_loaded_by_pcap, slot.pcap_bps, brick);
                    }
                }
                None => bucket_insert(&mut self.empty_by_pcap, slot.pcap_bps, brick),
            }
        } else {
            bucket_insert(&mut self.sleeping_by_pcap, slot.pcap_bps, brick);
        }
        if slot.active_sessions == 0 {
            self.idle.insert(brick);
        } else {
            self.idle.remove(&brick);
        }
    }

    /// Removes a brick from the index. `O(log n)`.
    pub fn remove(&mut self, brick: BrickId) {
        if let Some(old) = self.slots.remove(&brick) {
            self.unindex(brick, &old);
            self.idle.remove(&brick);
        }
    }

    fn unindex(&mut self, brick: BrickId, old: &AccelSlot) {
        if old.powered_on {
            match &old.loaded {
                Some(name) => {
                    if old.active_sessions < old.session_capacity {
                        bucket_remove(&mut self.loaded_available, name, brick);
                    }
                    if old.active_sessions == 0 {
                        bucket_remove(&mut self.idle_loaded_by_pcap, &old.pcap_bps, brick);
                    }
                }
                None => bucket_remove(&mut self.empty_by_pcap, &old.pcap_bps, brick),
            }
        } else {
            bucket_remove(&mut self.sleeping_by_pcap, &old.pcap_bps, brick);
        }
    }

    /// Accelerator bricks streaming no session, ascending by id.
    /// Zero-allocation; the iterator borrows the index.
    pub fn idle_bricks(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.idle.iter().copied()
    }

    /// Number of bricks streaming no session. `O(1)` — the cluster digest's
    /// accelerator-availability feed.
    pub fn idle_count(&self) -> usize {
        self.idle.len()
    }

    /// Lowest-id powered-on brick already programmed with `bitstream` that
    /// has a free streaming slot — the reuse query. `O(log n)`.
    pub fn loaded_fit(&self, bitstream: &str) -> Option<BrickId> {
        self.loaded_available
            .get(bitstream)
            .and_then(|bucket| bucket.iter().next().copied())
    }

    /// Powered-on brick with an empty slot and the fastest PCAP port
    /// (lowest id on ties) — the cheapest program that evicts nothing.
    /// `O(log n)`.
    pub fn fastest_empty(&self) -> Option<BrickId> {
        Self::fastest(&self.empty_by_pcap)
    }

    /// Powered-on brick whose loaded kernel is idle, fastest PCAP first —
    /// the reprogram (bitstream-eviction) fallback. `O(log n)`.
    pub fn fastest_idle_loaded(&self) -> Option<BrickId> {
        Self::fastest(&self.idle_loaded_by_pcap)
    }

    /// Sleeping brick with the fastest PCAP port — the wake-as-last-resort
    /// fallback (its PR state was lost, so it always programs). `O(log n)`.
    pub fn fastest_sleeping(&self) -> Option<BrickId> {
        Self::fastest(&self.sleeping_by_pcap)
    }

    fn fastest(map: &BTreeMap<u64, BTreeSet<BrickId>>) -> Option<BrickId> {
        map.iter()
            .next_back()
            .and_then(|(_, bucket)| bucket.iter().next().copied())
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(AccelSlot {
    loaded,
    active_sessions,
    session_capacity,
    pcap_bps,
    powered_on,
});
dredbox_snap::snap_struct!(AccelIndex {
    slots,
    loaded_available,
    empty_by_pcap,
    idle_loaded_by_pcap,
    sleeping_by_pcap,
    idle,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(loaded: Option<&str>, active: u32, capacity: u32, bps: u64, on: bool) -> AccelSlot {
        AccelSlot {
            loaded: loaded.map(str::to_owned),
            active_sessions: active,
            session_capacity: capacity,
            pcap_bps: bps,
            powered_on: on,
        }
    }

    #[test]
    fn upsert_moves_bricks_between_buckets() {
        let mut index = AccelIndex::new();
        assert!(index.is_empty());
        index.upsert(BrickId(20), slot(Some("sobel"), 1, 4, 3_200, true));
        index.upsert(BrickId(21), slot(None, 0, 4, 3_200, true));
        index.upsert(BrickId(22), slot(None, 0, 4, 3_200, false));
        assert_eq!(index.len(), 3);
        assert_eq!(index.loaded_fit("sobel"), Some(BrickId(20)));
        assert_eq!(index.loaded_fit("aes"), None);
        assert_eq!(index.fastest_empty(), Some(BrickId(21)));
        assert_eq!(index.fastest_idle_loaded(), None);
        assert_eq!(index.fastest_sleeping(), Some(BrickId(22)));
        assert_eq!(
            index.idle_bricks().collect::<Vec<_>>(),
            vec![BrickId(21), BrickId(22)]
        );

        // Brick 20 drains its session: it becomes a reprogram candidate
        // while staying a reuse target.
        index.upsert(BrickId(20), slot(Some("sobel"), 0, 4, 3_200, true));
        assert_eq!(index.fastest_idle_loaded(), Some(BrickId(20)));
        assert_eq!(index.loaded_fit("sobel"), Some(BrickId(20)));

        // Saturated streaming slots take a brick out of the reuse bucket.
        index.upsert(BrickId(20), slot(Some("sobel"), 4, 4, 3_200, true));
        assert_eq!(index.loaded_fit("sobel"), None);
        assert_eq!(index.fastest_idle_loaded(), None);

        // Power-off clears the sleeping bucket membership correctly.
        index.upsert(BrickId(21), slot(None, 0, 4, 3_200, false));
        assert_eq!(index.fastest_empty(), None);
        assert_eq!(index.fastest_sleeping(), Some(BrickId(21)));

        index.remove(BrickId(22));
        index.remove(BrickId(22)); // double remove is a no-op
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn reprogram_prefers_the_fastest_pcap_then_lowest_id() {
        let mut index = AccelIndex::new();
        index.upsert(BrickId(5), slot(None, 0, 4, 1_000, true));
        index.upsert(BrickId(3), slot(None, 0, 4, 2_000, true));
        index.upsert(BrickId(7), slot(None, 0, 4, 2_000, true));
        assert_eq!(index.fastest_empty(), Some(BrickId(3)));
        index.upsert(BrickId(9), slot(Some("x"), 0, 4, 5_000, true));
        // Empty slots and idle-loaded slots are separate fallbacks: the
        // caller asks for an empty brick first even when a faster loaded
        // brick could be evicted.
        assert_eq!(index.fastest_empty(), Some(BrickId(3)));
        assert_eq!(index.fastest_idle_loaded(), Some(BrickId(9)));
    }
}
