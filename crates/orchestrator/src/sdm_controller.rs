//! The Software-Defined Memory controller (SDM-C).
//!
//! The SDM-C is the autonomous service that receives allocation and scale-up
//! requests, inspects availability, makes a power-conscious selection,
//! reserves the resources, and pushes configurations to the optical circuit
//! switch and the SDM agents on the involved dCOMPUBRICKs. It is the
//! component whose service time — together with the brick-local hotplug
//! work — determines the scale-up agility evaluated in Figure 10.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use dredbox_bricks::{BrickId, PortId};
use dredbox_interconnect::LatencyConfig;
use dredbox_memory::{AllocationPolicy, MemoryGrant, MemoryPool, PickStrategy};
use dredbox_sim::time::SimDuration;
use dredbox_sim::units::ByteSize;

use crate::capacity::{CapacityIndex, CapacitySlot};
use crate::error::OrchestratorError;
use crate::placement::{ComputeBrickView, PlacementPolicy};
use crate::requests::{ScaleUpDemand, VmAllocationRequest};
use crate::reservation::ReservationLedger;
use crate::sdm_agent::SdmAgent;

/// Control-plane latencies of the SDM controller itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdmTimings {
    /// Receiving and parsing one request (REST/RPC overhead).
    pub request_rpc: SimDuration,
    /// Inspecting resource availability (database/state lookup).
    pub availability_check: SimDuration,
    /// Writing the reservation record.
    pub reservation_write: SimDuration,
    /// Programming one new cross-connection on the optical circuit switch
    /// (Polatis-class switches take tens of milliseconds to settle).
    pub circuit_switch_program: SimDuration,
    /// Pushing one configuration bundle to an SDM agent.
    pub agent_push: SimDuration,
}

impl SdmTimings {
    /// Defaults for the prototype's management plane.
    pub fn dredbox_default() -> Self {
        SdmTimings {
            request_rpc: SimDuration::from_millis(1),
            availability_check: SimDuration::from_millis(3),
            reservation_write: SimDuration::from_millis(2),
            circuit_switch_program: SimDuration::from_millis(25),
            agent_push: SimDuration::from_millis(2),
        }
    }
}

impl Default for SdmTimings {
    fn default() -> Self {
        SdmTimings::dredbox_default()
    }
}

/// The result of one scale-up handled by the controller: the memory grant
/// plus the controller-side service time (not including the brick-local
/// hotplug, which the Scale-up controller accounts separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleUpGrant {
    /// The demand that was served.
    pub demand: ScaleUpDemand,
    /// The segments granted from the pool.
    pub grant: MemoryGrant,
    /// RMST base addresses installed on the compute brick, one per segment.
    pub rmst_bases: Vec<u64>,
    /// SDM-controller service time for this request.
    pub service_time: SimDuration,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ComputeState {
    total_cores: u32,
    used_cores: u32,
    vm_count: u32,
    /// Multiset of per-VM core counts (vcpus → number of VMs holding that
    /// many), so releases can be matched against an actual admission.
    vm_cores: BTreeMap<u32, u32>,
    gth_ports: u8,
    attached_segments: u32,
    powered_on: bool,
}

impl ComputeState {
    /// The brick's capacity facts, as the index records them.
    fn slot(&self) -> CapacitySlot {
        CapacitySlot {
            total_cores: self.total_cores,
            free_cores: self.total_cores - self.used_cores,
            active: self.vm_count > 0,
            powered_on: self.powered_on,
        }
    }
}

/// The SDM controller.
///
/// ```
/// use dredbox_orchestrator::prelude::*;
/// use dredbox_bricks::BrickId;
/// use dredbox_sim::units::ByteSize;
///
/// let mut sdm = SdmController::dredbox_default();
/// sdm.register_compute_brick(BrickId(0), 32, 8);
/// sdm.register_membrick(BrickId(10), ByteSize::from_gib(32));
/// let grant = sdm.handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(8)))?;
/// assert_eq!(grant.grant.total(), ByteSize::from_gib(8));
/// assert!(grant.service_time.as_millis_f64() > 0.0);
/// # Ok::<(), dredbox_orchestrator::OrchestratorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdmController {
    pool: MemoryPool,
    ledger: ReservationLedger,
    agents: BTreeMap<BrickId, SdmAgent>,
    compute: BTreeMap<BrickId, ComputeState>,
    /// Incremental availability view over `compute`, kept in lockstep by
    /// every allocate / release / power transition so placement queries are
    /// `O(log n)` index lookups instead of rack-wide scans.
    capacity: CapacityIndex,
    placement: PlacementPolicy,
    timings: SdmTimings,
    latency_config: LatencyConfig,
    /// dMEMBRICKs each compute brick already has a circuit towards; new
    /// destinations need a switch-programming step.
    circuits: BTreeMap<BrickId, BTreeSet<BrickId>>,
}

impl SdmController {
    /// Creates a controller with power-aware memory placement and default
    /// timings.
    pub fn dredbox_default() -> Self {
        SdmController::new(
            AllocationPolicy::PowerAware,
            PlacementPolicy::PowerAware,
            SdmTimings::dredbox_default(),
            LatencyConfig::dredbox_default(),
        )
    }

    /// Creates a controller with explicit policies and timings.
    pub fn new(
        memory_policy: AllocationPolicy,
        placement: PlacementPolicy,
        timings: SdmTimings,
        latency_config: LatencyConfig,
    ) -> Self {
        SdmController {
            pool: MemoryPool::new(memory_policy),
            ledger: ReservationLedger::new(),
            agents: BTreeMap::new(),
            compute: BTreeMap::new(),
            capacity: CapacityIndex::new(),
            placement,
            timings,
            latency_config,
            circuits: BTreeMap::new(),
        }
    }

    /// The memory pool managed by the controller.
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// The reservation ledger.
    pub fn ledger(&self) -> &ReservationLedger {
        &self.ledger
    }

    /// The controller timings.
    pub fn timings(&self) -> &SdmTimings {
        &self.timings
    }

    /// The SDM agent of a compute brick, if registered.
    pub fn agent(&self, brick: BrickId) -> Option<&SdmAgent> {
        self.agents.get(&brick)
    }

    /// The controller's incremental availability view.
    pub fn capacity(&self) -> &CapacityIndex {
        &self.capacity
    }

    /// Switches the memory pool between its indexed and reference-scan
    /// dMEMBRICK selection — the equivalence-testing / benchmarking knob of
    /// [`MemoryPool::set_pick_strategy`].
    pub fn set_memory_pick_strategy(&mut self, strategy: PickStrategy) {
        self.pool.set_pick_strategy(strategy);
    }

    /// Registers a dCOMPUBRICK (and spawns its SDM agent).
    pub fn register_compute_brick(
        &mut self,
        brick: BrickId,
        cores: u32,
        gth_ports: u8,
    ) -> &mut Self {
        self.compute.insert(
            brick,
            ComputeState {
                total_cores: cores,
                used_cores: 0,
                vm_count: 0,
                vm_cores: BTreeMap::new(),
                gth_ports: gth_ports.max(1),
                attached_segments: 0,
                powered_on: true,
            },
        );
        self.sync_capacity(brick);
        self.agents.insert(
            brick,
            SdmAgent::new(brick, &self.latency_config, 256, ByteSize::from_gib(1024)),
        );
        self
    }

    /// Re-indexes one brick's capacity slot from its authoritative state.
    fn sync_capacity(&mut self, brick: BrickId) {
        if let Some(state) = self.compute.get(&brick) {
            self.capacity.upsert(brick, state.slot());
        }
    }

    /// Registers a dMEMBRICK and its capacity with the pool.
    pub fn register_membrick(&mut self, brick: BrickId, capacity: ByteSize) -> &mut Self {
        self.pool.register_membrick(brick, capacity);
        self
    }

    /// Number of registered compute bricks.
    pub fn compute_brick_count(&self) -> usize {
        self.compute.len()
    }

    /// Compute bricks currently running no VM (power-off candidates),
    /// ascending by id. Served straight from the capacity index — no
    /// per-call snapshot `Vec`.
    pub fn idle_compute_bricks(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.capacity.idle_bricks()
    }

    /// dMEMBRICKs currently exporting nothing (power-off candidates),
    /// ascending by id, served from the pool's index.
    pub fn idle_membricks(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.pool.unused_membricks()
    }

    /// Rebuilds the per-brick placement views by scanning every registered
    /// compute brick — the pre-index availability inspection, kept as the
    /// reference path for equivalence testing and benchmarking.
    pub fn compute_views(&self) -> Vec<ComputeBrickView> {
        self.compute
            .iter()
            .map(|(b, s)| s.slot().view(*b))
            .collect()
    }

    /// Handles a VM allocation request: picks a compute brick for the vCPUs
    /// and grants the requested memory from the pool. Returns the chosen
    /// brick, the grant and the controller service time.
    ///
    /// The brick is selected through the incremental [`CapacityIndex`] in
    /// `O(log n)`; [`SdmController::allocate_vm_scan`] is the reference
    /// implementation that re-scans the rack per request.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::NoComputeCapacity`] if no brick fits the vCPUs.
    /// * Memory-pool errors if the pool cannot cover the request.
    pub fn allocate_vm(
        &mut self,
        request: VmAllocationRequest,
    ) -> Result<(BrickId, ScaleUpGrant), OrchestratorError> {
        let brick = self
            .placement
            .choose_indexed(&self.capacity, request.vcpus)
            .ok_or(OrchestratorError::NoComputeCapacity {
                requested_vcpus: request.vcpus,
            })?;
        debug_assert_eq!(
            Some(brick),
            self.placement.choose(&self.compute_views(), request.vcpus),
            "indexed placement diverged from the reference scan"
        );
        self.admit_on(brick, request)
    }

    /// Reference implementation of [`SdmController::allocate_vm`]: rebuilds
    /// the rack-wide view slice and scans it, exactly as the pre-index
    /// control plane did. Kept for equivalence testing and as the benchmark
    /// baseline; both paths make identical placement decisions.
    ///
    /// # Errors
    ///
    /// Same contract as [`SdmController::allocate_vm`].
    pub fn allocate_vm_scan(
        &mut self,
        request: VmAllocationRequest,
    ) -> Result<(BrickId, ScaleUpGrant), OrchestratorError> {
        let views = self.compute_views();
        let brick = self.placement.choose(&views, request.vcpus).ok_or(
            OrchestratorError::NoComputeCapacity {
                requested_vcpus: request.vcpus,
            },
        )?;
        self.admit_on(brick, request)
    }

    /// Admits a VM on the brick placement chose: reserve cores, grant
    /// memory, commit, and re-index the brick's capacity slot.
    fn admit_on(
        &mut self,
        brick: BrickId,
        request: VmAllocationRequest,
    ) -> Result<(BrickId, ScaleUpGrant), OrchestratorError> {
        // The wake-sleeping fallback of both placement paths screens on
        // *total* cores (a swept brick is normally empty), but the power
        // view can be flipped off under live VMs; never over-commit the
        // brick's cores in that case — reject instead of corrupting the
        // availability accounting.
        let state = self
            .compute
            .get(&brick)
            .expect("placement returned a registered brick");
        if state.total_cores - state.used_cores < request.vcpus {
            return Err(OrchestratorError::NoComputeCapacity {
                requested_vcpus: request.vcpus,
            });
        }
        // Reserve the cores, grant memory, then commit. The memory itself is
        // reserved (and later released) by the inner scale-up, so holding it
        // here too would double-count it in the ledger.
        let reservation = self
            .ledger
            .reserve(Some(brick), request.vcpus, ByteSize::ZERO);
        let scale_up = match self.handle_scale_up(ScaleUpDemand::new(brick, request.memory)) {
            Ok(g) => g,
            Err(e) => {
                let _ = self.ledger.rollback(reservation);
                return Err(e);
            }
        };
        self.ledger.commit(reservation)?;
        let state = self
            .compute
            .get_mut(&brick)
            .expect("placement returned a registered brick");
        state.used_cores += request.vcpus;
        state.vm_count += 1;
        *state.vm_cores.entry(request.vcpus).or_insert(0) += 1;
        state.powered_on = true;
        self.sync_capacity(brick);
        Ok((brick, scale_up))
    }

    /// Releases a terminated VM's cores back to its compute brick and drops
    /// the ledger hold, so departed capacity can be re-admitted — the other
    /// half of the closed admit → run → depart loop. The memory grants are
    /// released separately through [`SdmController::release_scale_up`].
    /// Returns the controller service time of the release.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownComputeBrick`] for unregistered bricks.
    /// * [`OrchestratorError::MismatchedVmRelease`] if no VM with exactly
    ///   that core count was admitted on the brick; nothing is released in
    ///   that case, so the controller and ledger views never half-apply.
    pub fn release_vm(
        &mut self,
        brick: BrickId,
        vcpus: u32,
    ) -> Result<SimDuration, OrchestratorError> {
        let state = self
            .compute
            .get_mut(&brick)
            .ok_or(OrchestratorError::UnknownComputeBrick { brick })?;
        if !state.vm_cores.contains_key(&vcpus) {
            return Err(OrchestratorError::MismatchedVmRelease { brick, vcpus });
        }
        self.ledger
            .release_committed(Some(brick), vcpus, ByteSize::ZERO)?;
        let state = self.compute.get_mut(&brick).expect("checked above");
        let holders = state.vm_cores.get_mut(&vcpus).expect("checked above");
        *holders -= 1;
        if *holders == 0 {
            state.vm_cores.remove(&vcpus);
        }
        state.used_cores -= vcpus;
        state.vm_count -= 1;
        self.sync_capacity(brick);
        Ok(self.timings.request_rpc + self.timings.reservation_write)
    }

    /// Updates the controller's power view of a compute brick, e.g. after a
    /// rack-level power sweep. Placement treats powered-off bricks as
    /// sleeping and wakes them only as a last resort; a successful
    /// [`SdmController::allocate_vm`] on the brick marks it powered on
    /// again.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownComputeBrick`] for unregistered bricks.
    pub fn set_compute_power(
        &mut self,
        brick: BrickId,
        powered_on: bool,
    ) -> Result<(), OrchestratorError> {
        let state = self
            .compute
            .get_mut(&brick)
            .ok_or(OrchestratorError::UnknownComputeBrick { brick })?;
        state.powered_on = powered_on;
        self.sync_capacity(brick);
        Ok(())
    }

    /// Handles one scale-up demand: selects dMEMBRICK space (power-aware),
    /// reserves it, programs any new circuit, and pushes the attach
    /// configuration to the brick's SDM agent.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownComputeBrick`] for unregistered bricks.
    /// * Memory-pool errors when the pool cannot cover the demand.
    /// * [`OrchestratorError::AttachLimit`] if the agent cannot install the
    ///   mapping (RMST or remote-window exhaustion).
    pub fn handle_scale_up(
        &mut self,
        demand: ScaleUpDemand,
    ) -> Result<ScaleUpGrant, OrchestratorError> {
        if !self.compute.contains_key(&demand.compute_brick) {
            return Err(OrchestratorError::UnknownComputeBrick {
                brick: demand.compute_brick,
            });
        }
        let mut service_time = self.timings.request_rpc
            + self.timings.availability_check
            + self.timings.reservation_write;

        // Reserve, then carve the grant out of the pool.
        let reservation = self.ledger.reserve(None, 0, demand.amount);
        let grant = match self.pool.allocate(demand.compute_brick, demand.amount) {
            Ok(g) => g,
            Err(e) => {
                let _ = self.ledger.rollback(reservation);
                return Err(e.into());
            }
        };

        // Program circuits towards dMEMBRICKs this brick does not reach yet.
        let known = self.circuits.entry(demand.compute_brick).or_default();
        let mut new_circuits = 0u32;
        for segment in grant.segments() {
            if known.insert(segment.membrick) {
                new_circuits += 1;
            }
        }
        service_time += self
            .timings
            .circuit_switch_program
            .saturating_mul(u64::from(new_circuits));

        // Push the attach configuration to the SDM agent.
        let state = self
            .compute
            .get_mut(&demand.compute_brick)
            .expect("checked above");
        let agent = self
            .agents
            .get_mut(&demand.compute_brick)
            .expect("agent exists for every registered brick");
        let mut rmst_bases = Vec::with_capacity(grant.segments().len());
        for segment in grant.segments() {
            let port_index = (state.attached_segments % u32::from(state.gth_ports)) as u8;
            let port = PortId::new(demand.compute_brick, port_index);
            match agent.apply_attach(segment, port) {
                Ok(outcome) => {
                    service_time += self.timings.agent_push + outcome.control_time;
                    state.attached_segments += 1;
                    rmst_bases.push(outcome.rmst_base);
                }
                Err(_) => {
                    // Roll everything back: agent mappings, pool grant, reservation.
                    for base in &rmst_bases {
                        let _ = agent.apply_detach(*base);
                    }
                    let _ = self.pool.release_grant(&grant);
                    let _ = self.ledger.rollback(reservation);
                    return Err(OrchestratorError::AttachLimit {
                        brick: demand.compute_brick,
                        requested: demand.amount,
                    });
                }
            }
        }
        self.ledger.commit(reservation)?;
        Ok(ScaleUpGrant {
            demand,
            grant,
            rmst_bases,
            service_time,
        })
    }

    /// Releases a previous scale-up grant: detaches the RMST mappings and
    /// returns the segments to the pool. Returns the controller service
    /// time of the release.
    ///
    /// # Errors
    ///
    /// Propagates pool errors for unknown segments.
    pub fn release_scale_up(
        &mut self,
        grant: &ScaleUpGrant,
    ) -> Result<SimDuration, OrchestratorError> {
        let mut service_time = self.timings.request_rpc + self.timings.reservation_write;
        if let Some(agent) = self.agents.get_mut(&grant.demand.compute_brick) {
            for base in &grant.rmst_bases {
                if let Ok(t) = agent.apply_detach(*base) {
                    service_time += self.timings.agent_push + t;
                }
            }
        }
        self.pool.release_grant(&grant.grant)?;
        self.ledger
            .release_committed(None, 0, grant.grant.total())?;
        Ok(service_time)
    }

    /// Processes a burst of concurrent scale-up demands. The SDM controller
    /// is a single autonomous service, so requests are admitted FIFO and
    /// each request's completion delay includes the service times of the
    /// requests queued ahead of it — the "aggressiveness of scale-up
    /// concurrency" effect visible in Figure 10.
    ///
    /// Returns, for each demand (in order), the grant and its completion
    /// delay (queueing + own service time). Demands that fail are skipped.
    pub fn scale_up_burst(
        &mut self,
        demands: &[ScaleUpDemand],
    ) -> Vec<(ScaleUpGrant, SimDuration)> {
        let mut elapsed = SimDuration::ZERO;
        let mut results = Vec::with_capacity(demands.len());
        for demand in demands {
            match self.handle_scale_up(*demand) {
                Ok(grant) => {
                    elapsed += grant.service_time;
                    results.push((grant, elapsed));
                }
                Err(_) => continue,
            }
        }
        results
    }
}

impl Default for SdmController {
    fn default() -> Self {
        SdmController::dredbox_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> SdmController {
        let mut sdm = SdmController::dredbox_default();
        for b in 0..4u32 {
            sdm.register_compute_brick(BrickId(b), 32, 8);
        }
        for b in 10..14u32 {
            sdm.register_membrick(BrickId(b), ByteSize::from_gib(32));
        }
        sdm
    }

    #[test]
    fn scale_up_grants_memory_and_configures_the_agent() {
        let mut sdm = controller();
        let grant = sdm
            .handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(8)))
            .unwrap();
        assert_eq!(grant.grant.total(), ByteSize::from_gib(8));
        assert_eq!(grant.rmst_bases.len(), grant.grant.segments().len());
        // Service time includes one circuit programming (first contact with
        // that dMEMBRICK) plus the fixed overheads: tens of milliseconds.
        assert!(grant.service_time.as_millis_f64() > 25.0);
        assert!(grant.service_time.as_secs_f64() < 1.0);
        assert_eq!(
            sdm.agent(BrickId(0)).unwrap().mapped_remote_memory(),
            ByteSize::from_gib(8)
        );
        assert_eq!(sdm.pool().total_allocated(), ByteSize::from_gib(8));
        assert_eq!(sdm.ledger().held_memory(), ByteSize::from_gib(8));
    }

    #[test]
    fn second_scale_up_to_the_same_membrick_skips_circuit_programming() {
        let mut sdm = controller();
        let first = sdm
            .handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(4)))
            .unwrap();
        let second = sdm
            .handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(4)))
            .unwrap();
        assert!(second.service_time < first.service_time);
        let delta = first.service_time - second.service_time;
        assert_eq!(delta, SdmTimings::dredbox_default().circuit_switch_program);
    }

    #[test]
    fn release_returns_memory_and_unmaps() {
        let mut sdm = controller();
        let grant = sdm
            .handle_scale_up(ScaleUpDemand::new(BrickId(1), ByteSize::from_gib(16)))
            .unwrap();
        let t = sdm.release_scale_up(&grant).unwrap();
        assert!(t.as_millis_f64() > 0.0);
        assert_eq!(sdm.pool().total_allocated(), ByteSize::ZERO);
        assert_eq!(sdm.ledger().held_memory(), ByteSize::ZERO);
        assert_eq!(
            sdm.agent(BrickId(1)).unwrap().mapped_remote_memory(),
            ByteSize::ZERO
        );
        assert_eq!(sdm.idle_membricks().count(), 4);
    }

    #[test]
    fn vm_allocation_places_cores_and_memory() {
        let mut sdm = controller();
        let (brick, grant) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(24)))
            .unwrap();
        assert!(sdm.compute_brick_count() == 4);
        assert_eq!(grant.grant.total(), ByteSize::from_gib(24));
        assert_eq!(grant.demand.compute_brick, brick);
        assert_eq!(sdm.idle_compute_bricks().count(), 3);
        // Power-aware placement keeps packing the same brick.
        let (brick2, _) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(8)))
            .unwrap();
        assert_eq!(brick, brick2);
        // Impossible requests fail cleanly.
        assert!(matches!(
            sdm.allocate_vm(VmAllocationRequest::new(64, ByteSize::from_gib(1))),
            Err(OrchestratorError::NoComputeCapacity { .. })
        ));
        let before_free = sdm.pool().total_free();
        assert!(sdm
            .allocate_vm(VmAllocationRequest::new(1, ByteSize::from_gib(500)))
            .is_err());
        assert_eq!(
            sdm.pool().total_free(),
            before_free,
            "failed allocation must not leak"
        );
    }

    #[test]
    fn released_vms_return_their_cores_for_re_admission() {
        let mut sdm = SdmController::dredbox_default();
        sdm.register_compute_brick(BrickId(0), 32, 8);
        sdm.register_membrick(BrickId(10), ByteSize::from_gib(32));
        // Fill the brick, then terminate and re-admit: the closed loop must
        // not leak cores or ledger holds.
        for _ in 0..3 {
            let (brick, grant) = sdm
                .allocate_vm(VmAllocationRequest::new(32, ByteSize::from_gib(8)))
                .unwrap();
            // The brick is full now: another VM cannot be placed.
            assert!(matches!(
                sdm.allocate_vm(VmAllocationRequest::new(32, ByteSize::from_gib(8))),
                Err(OrchestratorError::NoComputeCapacity { .. })
            ));
            let t = sdm.release_vm(brick, 32).unwrap();
            assert!(t > SimDuration::ZERO);
            sdm.release_scale_up(&grant).unwrap();
        }
        assert_eq!(sdm.idle_compute_bricks().count(), 1);
        assert_eq!(sdm.ledger().held_memory(), ByteSize::ZERO);
        assert_eq!(sdm.ledger().held_cores(BrickId(0)), 0);
        assert!(matches!(
            sdm.release_vm(BrickId(99), 1),
            Err(OrchestratorError::UnknownComputeBrick { .. })
        ));
        // With no VM left, another release must be rejected without touching
        // the availability view.
        assert!(matches!(
            sdm.release_vm(BrickId(0), 32),
            Err(OrchestratorError::MismatchedVmRelease { .. })
        ));
        // A release spanning several VMs' cores must not pass either: admit
        // a 4-core and an 8-core VM, then try to release "12 cores".
        let (b1, _) = sdm
            .allocate_vm(VmAllocationRequest::new(4, ByteSize::from_gib(1)))
            .unwrap();
        let (b2, _) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(1)))
            .unwrap();
        assert_eq!(b1, b2, "power-aware placement packs one brick");
        assert!(matches!(
            sdm.release_vm(b1, 12),
            Err(OrchestratorError::MismatchedVmRelease { .. })
        ));
        sdm.release_vm(b1, 8).unwrap();
        sdm.release_vm(b1, 4).unwrap();
    }

    #[test]
    fn power_view_steers_placement_away_from_swept_bricks() {
        let mut sdm = controller();
        // Sweep bricks 1-3; placement must now prefer the powered brick 0.
        for b in 1..4u32 {
            sdm.set_compute_power(BrickId(b), false).unwrap();
        }
        let (brick, grant) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(4)))
            .unwrap();
        assert_eq!(brick, BrickId(0));
        sdm.release_vm(brick, 8).unwrap();
        sdm.release_scale_up(&grant).unwrap();
        // With every brick swept, the lowest-id sleeping brick is woken.
        sdm.set_compute_power(BrickId(0), false).unwrap();
        let (woken, _) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(4)))
            .unwrap();
        assert_eq!(woken, BrickId(0));
        assert!(matches!(
            sdm.set_compute_power(BrickId(77), true),
            Err(OrchestratorError::UnknownComputeBrick { .. })
        ));
    }

    #[test]
    fn waking_an_occupied_swept_brick_never_over_commits() {
        let mut sdm = SdmController::dredbox_default();
        sdm.register_compute_brick(BrickId(0), 32, 8);
        sdm.register_membrick(BrickId(10), ByteSize::from_gib(32));
        sdm.allocate_vm(VmAllocationRequest::new(20, ByteSize::from_gib(1)))
            .unwrap();
        // Sweep the brick while its VM still runs, then ask for more cores
        // than remain: the wake fallback selects the brick on total
        // capacity, but the admission must reject rather than over-commit
        // (which would underflow the brick's free-core accounting).
        sdm.set_compute_power(BrickId(0), false).unwrap();
        for request in [
            VmAllocationRequest::new(16, ByteSize::from_gib(1)),
            VmAllocationRequest::new(13, ByteSize::from_gib(1)),
        ] {
            assert!(matches!(
                sdm.allocate_vm(request),
                Err(OrchestratorError::NoComputeCapacity { .. })
            ));
            assert!(matches!(
                sdm.allocate_vm_scan(request),
                Err(OrchestratorError::NoComputeCapacity { .. })
            ));
        }
        // The remaining capacity is still admittable, and the rejected
        // requests left nothing behind in the ledger.
        let (brick, _) = sdm
            .allocate_vm(VmAllocationRequest::new(12, ByteSize::from_gib(1)))
            .unwrap();
        assert_eq!(brick, BrickId(0));
        assert_eq!(sdm.ledger().held_cores(BrickId(0)), 32);
    }

    #[test]
    fn unknown_brick_and_oversize_demands_fail() {
        let mut sdm = controller();
        assert!(matches!(
            sdm.handle_scale_up(ScaleUpDemand::new(BrickId(77), ByteSize::from_gib(1))),
            Err(OrchestratorError::UnknownComputeBrick { .. })
        ));
        assert!(matches!(
            sdm.handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(1_000))),
            Err(OrchestratorError::Memory(_))
        ));
        assert_eq!(sdm.ledger().held_memory(), ByteSize::ZERO);
    }

    #[test]
    fn burst_delays_grow_with_queue_position() {
        let mut sdm = controller();
        let demands: Vec<ScaleUpDemand> = (0..4u32)
            .map(|i| ScaleUpDemand::new(BrickId(i), ByteSize::from_gib(4)))
            .collect();
        let results = sdm.scale_up_burst(&demands);
        assert_eq!(results.len(), 4);
        for pair in results.windows(2) {
            assert!(
                pair[1].1 > pair[0].1,
                "completion delays must be increasing"
            );
        }
        // The last requester waits for everyone ahead of it.
        let total_service: SimDuration = results.iter().map(|(g, _)| g.service_time).sum();
        assert_eq!(results.last().unwrap().1, total_service);
    }
}
