//! The Software-Defined Memory controller (SDM-C).
//!
//! The SDM-C is the autonomous service that receives allocation and scale-up
//! requests, inspects availability, makes a power-conscious selection,
//! reserves the resources, and pushes configurations to the optical circuit
//! switch and the SDM agents on the involved dCOMPUBRICKs. It is the
//! component whose service time — together with the brick-local hotplug
//! work — determines the scale-up agility evaluated in Figure 10.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use dredbox_bricks::{BrickId, BrickMap, PortId};
use dredbox_interconnect::LatencyConfig;
use dredbox_memory::{
    AllocationPolicy, MemoryError, MemoryGrant, MemoryPool, MemorySegment, PickStrategy,
};
use dredbox_sim::queue::ControlPlaneQueue;
use dredbox_sim::time::{SimDuration, SimTime};
use dredbox_sim::units::{Bandwidth, ByteSize};

use crate::accel_index::{AccelIndex, AccelSlot};
use crate::capacity::{CapacityIndex, CapacitySlot};
use crate::error::OrchestratorError;
use crate::placement::{ComputeBrickView, PlacementPolicy};
use crate::requests::{OffloadRequest, ScaleUpDemand, VmAllocationRequest};
use crate::reservation::ReservationLedger;
use crate::sdm_agent::SdmAgent;

/// Control-plane latencies of the SDM controller itself.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdmTimings {
    /// Receiving and parsing one request (REST/RPC overhead).
    pub request_rpc: SimDuration,
    /// Inspecting resource availability (database/state lookup).
    pub availability_check: SimDuration,
    /// Writing the reservation record.
    pub reservation_write: SimDuration,
    /// Programming one new cross-connection on the optical circuit switch
    /// (Polatis-class switches take tens of milliseconds to settle).
    pub circuit_switch_program: SimDuration,
    /// Pushing one configuration bundle to an SDM agent.
    pub agent_push: SimDuration,
    /// Extra scheduler/state-store contention charged per request found
    /// queued ahead of an arrival at the controller (the SDM-side analogue
    /// of `ScaleOutBaseline::per_concurrent_penalty`, charged through
    /// [`ControlPlaneQueue`]).
    pub queued_request_penalty: SimDuration,
}

impl SdmTimings {
    /// Defaults for the prototype's management plane.
    pub fn dredbox_default() -> Self {
        SdmTimings {
            request_rpc: SimDuration::from_millis(1),
            availability_check: SimDuration::from_millis(3),
            reservation_write: SimDuration::from_millis(2),
            circuit_switch_program: SimDuration::from_millis(25),
            agent_push: SimDuration::from_millis(2),
            queued_request_penalty: SimDuration::from_micros(500),
        }
    }
}

impl Default for SdmTimings {
    fn default() -> Self {
        SdmTimings::dredbox_default()
    }
}

/// The result of one scale-up handled by the controller: the memory grant
/// plus the controller-side service time (not including the brick-local
/// hotplug, which the Scale-up controller accounts separately).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleUpGrant {
    /// The demand that was served.
    pub demand: ScaleUpDemand,
    /// The segments granted from the pool.
    pub grant: MemoryGrant,
    /// RMST base addresses installed on the compute brick, one per segment.
    pub rmst_bases: Vec<u64>,
    /// SDM-controller service time for this request.
    pub service_time: SimDuration,
}

/// The result of migrating a VM's compute placement between bricks through
/// the SDM controller: the grants as re-based onto the destination (new
/// owner, new RMST bases on the destination agent) plus what the
/// reserve → re-route → drain → switchover flow cost at the control plane.
/// The dMEMBRICK segments themselves never move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationOutcome {
    /// The brick the VM left.
    pub from: BrickId,
    /// The brick now hosting the VM's cores.
    pub to: BrickId,
    /// Cores moved.
    pub vcpus: u32,
    /// The VM's grants, re-pointed at the destination (same segments, new
    /// RMST bases). Replaces the caller's previous grant records.
    pub rebased: Vec<ScaleUpGrant>,
    /// New optical circuits programmed towards the involved dMEMBRICKs.
    pub circuits_programmed: u32,
    /// Source-side circuits torn down because no RMST route needs them.
    pub circuits_torn_down: u32,
    /// SDM-controller service time of the whole flow.
    pub service_time: SimDuration,
}

/// Identifier of a live offload session managed by the SDM controller.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct OffloadSessionId(pub u64);

impl std::fmt::Display for OffloadSessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "offload{}", self.0)
    }
}

/// A live offload session: which VM-hosting compute brick streams which
/// kernel on which dACCELBRICK. Held by the controller from
/// [`SdmController::begin_offload`] until [`SdmController::end_offload`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffloadSession {
    /// Session identifier.
    pub id: OffloadSessionId,
    /// The compute brick whose VM issued the offload.
    pub compute_brick: BrickId,
    /// The accelerator brick serving it.
    pub accel_brick: BrickId,
    /// Name of the kernel bitstream in the accelerator's slot.
    pub bitstream: String,
    /// Input data the kernel streams through.
    pub input: ByteSize,
}

/// The result of one `begin_offload` handled by the controller: where the
/// session landed, what (if anything) had to be programmed, and the
/// controller-side service time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffloadGrant {
    /// The new session.
    pub session: OffloadSession,
    /// Whether the accelerator was already programmed with the kernel
    /// (bitstream reuse — no PCAP reconfiguration paid).
    pub reused_bitstream: bool,
    /// Whether a sleeping accelerator had to be woken (its PR state was
    /// lost on power-down, so it also programmed).
    pub woke_brick: bool,
    /// Whether a new optical circuit from the compute brick to the
    /// accelerator was programmed on the switch.
    pub circuit_programmed: bool,
    /// PCAP partial-reconfiguration time paid (zero on reuse).
    pub pcap_time: SimDuration,
    /// SDM-controller service time for this request (includes `pcap_time`
    /// and any circuit programming).
    pub service_time: SimDuration,
}

/// What ending one offload session cost at the control plane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffloadRelease {
    /// The session that ended.
    pub session: OffloadSession,
    /// Whether the compute→accelerator circuit was torn down (no other
    /// session between the pair needed it).
    pub circuit_torn_down: bool,
    /// SDM-controller service time of the release.
    pub service_time: SimDuration,
}

/// Authoritative per-accelerator state the controller schedules against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct AccelState {
    /// Effective PCAP programming bandwidth, bits per second.
    pcap_bps: u64,
    /// Concurrent streaming slots (one per GTH transceiver).
    session_capacity: u32,
    /// Sessions currently streaming.
    active_sessions: u32,
    /// The kernel programmed into the reconfigurable slot.
    loaded: Option<String>,
    /// Power view (synced with rack sweeps like the compute one).
    powered_on: bool,
}

impl AccelState {
    /// The brick's scheduling facts, as the index records them.
    fn slot(&self) -> AccelSlot {
        AccelSlot {
            loaded: self.loaded.clone(),
            active_sessions: self.active_sessions,
            session_capacity: self.session_capacity,
            pcap_bps: self.pcap_bps,
            powered_on: self.powered_on,
        }
    }

    /// PCAP partial-reconfiguration time for a bitstream of `size`.
    fn pcap_time(&self, size: ByteSize) -> SimDuration {
        SimDuration::from_secs_f64(size.as_bytes() as f64 * 8.0 / self.pcap_bps as f64)
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ComputeState {
    total_cores: u32,
    used_cores: u32,
    vm_count: u32,
    /// Multiset of per-VM core counts (vcpus → number of VMs holding that
    /// many), so releases can be matched against an actual admission.
    vm_cores: BTreeMap<u32, u32>,
    gth_ports: u8,
    attached_segments: u32,
    powered_on: bool,
}

impl ComputeState {
    /// The brick's capacity facts, as the index records them.
    fn slot(&self) -> CapacitySlot {
        CapacitySlot {
            total_cores: self.total_cores,
            free_cores: self.total_cores - self.used_cores,
            active: self.vm_count > 0,
            powered_on: self.powered_on,
        }
    }
}

/// The SDM controller.
///
/// ```
/// use dredbox_orchestrator::prelude::*;
/// use dredbox_bricks::{BrickId, BrickMap};
/// use dredbox_sim::units::ByteSize;
///
/// let mut sdm = SdmController::dredbox_default();
/// sdm.register_compute_brick(BrickId(0), 32, 8);
/// sdm.register_membrick(BrickId(10), ByteSize::from_gib(32));
/// let grant = sdm.handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(8)))?;
/// assert_eq!(grant.grant.total(), ByteSize::from_gib(8));
/// assert!(grant.service_time.as_millis_f64() > 0.0);
/// # Ok::<(), dredbox_orchestrator::OrchestratorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SdmController {
    pool: MemoryPool,
    ledger: ReservationLedger,
    agents: BrickMap<SdmAgent>,
    compute: BrickMap<ComputeState>,
    /// Incremental availability view over `compute`, kept in lockstep by
    /// every allocate / release / power transition so placement queries are
    /// `O(log n)` index lookups instead of rack-wide scans.
    capacity: CapacityIndex,
    placement: PlacementPolicy,
    timings: SdmTimings,
    latency_config: LatencyConfig,
    /// dMEMBRICKs each compute brick already has a circuit towards; new
    /// destinations need a switch-programming step.
    circuits: BrickMap<BTreeSet<BrickId>>,
    /// Authoritative per-accelerator state, mirrored into `accel_index`.
    accel: BTreeMap<BrickId, AccelState>,
    /// Incremental availability view over `accel`, kept in lockstep by
    /// every offload begin/end and power transition (the dACCELBRICK
    /// analogue of `capacity`).
    accel_index: AccelIndex,
    /// Per compute brick, the accelerators it holds a circuit towards and
    /// how many live sessions use each (torn down when the count drains).
    accel_circuits: BTreeMap<BrickId, BTreeMap<BrickId, u32>>,
    /// Live offload sessions by id.
    sessions: BTreeMap<OffloadSessionId, OffloadSession>,
    next_session: u64,
    /// Compute bricks currently failed by fault injection. They stay
    /// registered — draining their VMs and migrating away from them uses
    /// the normal paths — but leave the capacity index, so placement never
    /// targets them until repair.
    failed_compute: BTreeSet<BrickId>,
    /// Accelerator bricks currently failed by fault injection; held out of
    /// the accelerator index like `failed_compute`.
    failed_accel: BTreeSet<BrickId>,
}

impl SdmController {
    /// Creates a controller with power-aware memory placement and default
    /// timings.
    pub fn dredbox_default() -> Self {
        SdmController::new(
            AllocationPolicy::PowerAware,
            PlacementPolicy::PowerAware,
            SdmTimings::dredbox_default(),
            LatencyConfig::dredbox_default(),
        )
    }

    /// Creates a controller with explicit policies and timings.
    pub fn new(
        memory_policy: AllocationPolicy,
        placement: PlacementPolicy,
        timings: SdmTimings,
        latency_config: LatencyConfig,
    ) -> Self {
        SdmController {
            pool: MemoryPool::new(memory_policy),
            ledger: ReservationLedger::new(),
            agents: BrickMap::new(),
            compute: BrickMap::new(),
            capacity: CapacityIndex::new(),
            placement,
            timings,
            latency_config,
            circuits: BrickMap::new(),
            accel: BTreeMap::new(),
            accel_index: AccelIndex::new(),
            accel_circuits: BTreeMap::new(),
            sessions: BTreeMap::new(),
            next_session: 0,
            failed_compute: BTreeSet::new(),
            failed_accel: BTreeSet::new(),
        }
    }

    /// The memory pool managed by the controller.
    pub fn pool(&self) -> &MemoryPool {
        &self.pool
    }

    /// The reservation ledger.
    pub fn ledger(&self) -> &ReservationLedger {
        &self.ledger
    }

    /// The controller timings.
    pub fn timings(&self) -> &SdmTimings {
        &self.timings
    }

    /// The SDM agent of a compute brick, if registered.
    pub fn agent(&self, brick: BrickId) -> Option<&SdmAgent> {
        self.agents.get(brick)
    }

    /// The controller's incremental availability view.
    pub fn capacity(&self) -> &CapacityIndex {
        &self.capacity
    }

    /// Switches the memory pool between its indexed and reference-scan
    /// dMEMBRICK selection — the equivalence-testing / benchmarking knob of
    /// [`MemoryPool::set_pick_strategy`].
    pub fn set_memory_pick_strategy(&mut self, strategy: PickStrategy) {
        self.pool.set_pick_strategy(strategy);
    }

    /// Registers a dCOMPUBRICK (and spawns its SDM agent).
    pub fn register_compute_brick(
        &mut self,
        brick: BrickId,
        cores: u32,
        gth_ports: u8,
    ) -> &mut Self {
        self.compute.insert(
            brick,
            ComputeState {
                total_cores: cores,
                used_cores: 0,
                vm_count: 0,
                vm_cores: BTreeMap::new(),
                gth_ports: gth_ports.max(1),
                attached_segments: 0,
                powered_on: true,
            },
        );
        self.sync_capacity(brick);
        self.agents.insert(
            brick,
            SdmAgent::new(brick, &self.latency_config, 256, ByteSize::from_gib(1024)),
        );
        self
    }

    /// Re-indexes one brick's capacity slot from its authoritative state.
    /// Failed bricks are held *out* of the index instead, so no allocate /
    /// release / power transition on a dead brick can resurface it as a
    /// placement candidate before repair.
    fn sync_capacity(&mut self, brick: BrickId) {
        if self.failed_compute.contains(&brick) {
            self.capacity.remove(brick);
        } else if let Some(state) = self.compute.get(brick) {
            self.capacity.upsert(brick, state.slot());
        }
    }

    /// Registers a dMEMBRICK and its capacity with the pool.
    pub fn register_membrick(&mut self, brick: BrickId, capacity: ByteSize) -> &mut Self {
        self.pool.register_membrick(brick, capacity);
        self
    }

    /// Registers a dACCELBRICK: its PCAP programming bandwidth (the
    /// reprogram-cost key) and its concurrent streaming slots (one per GTH
    /// transceiver towards the rack interconnect).
    pub fn register_accel_brick(
        &mut self,
        brick: BrickId,
        pcap_bandwidth: Bandwidth,
        session_capacity: u32,
    ) -> &mut Self {
        self.accel.insert(
            brick,
            AccelState {
                pcap_bps: pcap_bandwidth.as_bps() as u64,
                session_capacity: session_capacity.max(1),
                active_sessions: 0,
                loaded: None,
                powered_on: true,
            },
        );
        self.sync_accel(brick);
        self
    }

    /// Re-indexes one accelerator's slot from its authoritative state,
    /// holding failed bricks out of the index like
    /// [`SdmController::sync_capacity`].
    fn sync_accel(&mut self, brick: BrickId) {
        if self.failed_accel.contains(&brick) {
            self.accel_index.remove(brick);
        } else if let Some(state) = self.accel.get(&brick) {
            self.accel_index.upsert(brick, state.slot());
        }
    }

    /// The controller's incremental accelerator-availability view.
    pub fn accel(&self) -> &AccelIndex {
        &self.accel_index
    }

    /// Number of registered accelerator bricks.
    pub fn accel_brick_count(&self) -> usize {
        self.accel.len()
    }

    /// Live offload sessions, ascending by id.
    pub fn offload_sessions(&self) -> impl Iterator<Item = &OffloadSession> {
        self.sessions.values()
    }

    /// Number of live offload sessions.
    pub fn offload_session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Looks up a live offload session.
    pub fn offload_session(&self, session: OffloadSessionId) -> Option<&OffloadSession> {
        self.sessions.get(&session)
    }

    /// Accelerator bricks streaming no session (power-off candidates),
    /// ascending by id, served from the accelerator index.
    pub fn idle_accel_bricks(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.accel_index.idle_bricks()
    }

    /// Number of registered compute bricks.
    pub fn compute_brick_count(&self) -> usize {
        self.compute.len()
    }

    /// Compute bricks currently running no VM (power-off candidates),
    /// ascending by id. Served straight from the capacity index — no
    /// per-call snapshot `Vec`.
    pub fn idle_compute_bricks(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.capacity.idle_bricks()
    }

    /// dMEMBRICKs currently exporting nothing (power-off candidates),
    /// ascending by id, served from the pool's index.
    pub fn idle_membricks(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.pool.unused_membricks()
    }

    /// Rebuilds the per-brick placement views by scanning every registered
    /// compute brick — the pre-index availability inspection, kept as the
    /// reference path for equivalence testing and benchmarking.
    pub fn compute_views(&self) -> Vec<ComputeBrickView> {
        // Failed bricks are skipped so the scan stays equivalent to the
        // index, which drops them on failure.
        self.compute
            .iter()
            .filter(|(b, _)| !self.failed_compute.contains(b))
            .map(|(b, s)| s.slot().view(b))
            .collect()
    }

    /// Handles a VM allocation request: picks a compute brick for the vCPUs
    /// and grants the requested memory from the pool. Returns the chosen
    /// brick, the grant and the controller service time.
    ///
    /// The brick is selected through the incremental [`CapacityIndex`] in
    /// `O(log n)`; [`SdmController::allocate_vm_scan`] is the reference
    /// implementation that re-scans the rack per request.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::NoComputeCapacity`] if no brick fits the vCPUs.
    /// * Memory-pool errors if the pool cannot cover the request.
    pub fn allocate_vm(
        &mut self,
        request: VmAllocationRequest,
    ) -> Result<(BrickId, ScaleUpGrant), OrchestratorError> {
        let brick = self
            .placement
            .choose_indexed(&self.capacity, request.vcpus)
            .ok_or(OrchestratorError::NoComputeCapacity {
                requested_vcpus: request.vcpus,
            })?;
        debug_assert_eq!(
            Some(brick),
            self.placement.choose(&self.compute_views(), request.vcpus),
            "indexed placement diverged from the reference scan"
        );
        self.admit_on(brick, request)
    }

    /// Reference implementation of [`SdmController::allocate_vm`]: rebuilds
    /// the rack-wide view slice and scans it, exactly as the pre-index
    /// control plane did. Kept for equivalence testing and as the benchmark
    /// baseline; both paths make identical placement decisions.
    ///
    /// # Errors
    ///
    /// Same contract as [`SdmController::allocate_vm`].
    pub fn allocate_vm_scan(
        &mut self,
        request: VmAllocationRequest,
    ) -> Result<(BrickId, ScaleUpGrant), OrchestratorError> {
        let views = self.compute_views();
        let brick = self.placement.choose(&views, request.vcpus).ok_or(
            OrchestratorError::NoComputeCapacity {
                requested_vcpus: request.vcpus,
            },
        )?;
        self.admit_on(brick, request)
    }

    /// Admits a VM on the brick placement chose: reserve cores, grant
    /// memory, commit, and re-index the brick's capacity slot.
    fn admit_on(
        &mut self,
        brick: BrickId,
        request: VmAllocationRequest,
    ) -> Result<(BrickId, ScaleUpGrant), OrchestratorError> {
        if self.failed_compute.contains(&brick) {
            return Err(OrchestratorError::BrickFailed { brick });
        }
        // The wake-sleeping fallback of both placement paths screens on
        // *total* cores (a swept brick is normally empty), but the power
        // view can be flipped off under live VMs; never over-commit the
        // brick's cores in that case — reject instead of corrupting the
        // availability accounting.
        let state = self
            .compute
            .get(brick)
            .expect("placement returned a registered brick");
        if state.total_cores - state.used_cores < request.vcpus {
            return Err(OrchestratorError::NoComputeCapacity {
                requested_vcpus: request.vcpus,
            });
        }
        // Reserve the cores, grant memory, then commit. The memory itself is
        // reserved (and later released) by the inner scale-up, so holding it
        // here too would double-count it in the ledger.
        let reservation = self
            .ledger
            .reserve(Some(brick), request.vcpus, ByteSize::ZERO);
        let scale_up = match self.handle_scale_up(ScaleUpDemand::new(brick, request.memory)) {
            Ok(g) => g,
            Err(e) => {
                let _ = self.ledger.rollback(reservation);
                return Err(e);
            }
        };
        self.ledger.commit(reservation)?;
        let state = self
            .compute
            .get_mut(brick)
            .expect("placement returned a registered brick");
        state.used_cores += request.vcpus;
        state.vm_count += 1;
        *state.vm_cores.entry(request.vcpus).or_insert(0) += 1;
        state.powered_on = true;
        self.sync_capacity(brick);
        Ok((brick, scale_up))
    }

    /// Releases a terminated VM's cores back to its compute brick and drops
    /// the ledger hold, so departed capacity can be re-admitted — the other
    /// half of the closed admit → run → depart loop. The memory grants are
    /// released separately through [`SdmController::release_scale_up`].
    /// Returns the controller service time of the release.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownComputeBrick`] for unregistered bricks.
    /// * [`OrchestratorError::MismatchedVmRelease`] if no VM with exactly
    ///   that core count was admitted on the brick; nothing is released in
    ///   that case, so the controller and ledger views never half-apply.
    pub fn release_vm(
        &mut self,
        brick: BrickId,
        vcpus: u32,
    ) -> Result<SimDuration, OrchestratorError> {
        let state = self
            .compute
            .get_mut(brick)
            .ok_or(OrchestratorError::UnknownComputeBrick { brick })?;
        if !state.vm_cores.contains_key(&vcpus) {
            return Err(OrchestratorError::MismatchedVmRelease { brick, vcpus });
        }
        self.ledger
            .release_committed(Some(brick), vcpus, ByteSize::ZERO)?;
        let state = self.compute.get_mut(brick).expect("checked above");
        let holders = state.vm_cores.get_mut(&vcpus).expect("checked above");
        *holders -= 1;
        if *holders == 0 {
            state.vm_cores.remove(&vcpus);
        }
        state.used_cores -= vcpus;
        state.vm_count -= 1;
        self.sync_capacity(brick);
        Ok(self.timings.request_rpc + self.timings.reservation_write)
    }

    /// Migrates a VM's compute placement from `from` to `to` while its
    /// memory stays resident on the dMEMBRICKs: reserves the destination
    /// cores in the two-phase ledger, installs the VM's segments on the
    /// destination agent (programming any missing circuits), then drains the
    /// source-side RMST routes, tears down circuits no remaining route
    /// needs, and switches the core accounting over — re-indexing both
    /// bricks' capacity slots incrementally.
    ///
    /// The flow is atomic: every failure path returns before the source (or
    /// any committed state) is touched, so a rejected migration leaves the
    /// controller bit-identical to before the call.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::InvalidMigration`] if `from == to` or the
    ///   grants do not belong to `from`.
    /// * [`OrchestratorError::UnknownComputeBrick`] for unregistered bricks.
    /// * [`OrchestratorError::MismatchedVmRelease`] if no VM with exactly
    ///   `vcpus` cores was admitted on `from`.
    /// * [`OrchestratorError::NoComputeCapacity`] if `to` lacks the free
    ///   cores.
    /// * [`OrchestratorError::AttachLimit`] if the destination agent cannot
    ///   map all segments (RMST or remote-window exhaustion).
    pub fn migrate_vm(
        &mut self,
        from: BrickId,
        to: BrickId,
        vcpus: u32,
        grants: &[ScaleUpGrant],
    ) -> Result<MigrationOutcome, OrchestratorError> {
        // Validation phase: every rejection below leaves the controller
        // untouched.
        if from == to {
            return Err(OrchestratorError::InvalidMigration { from, to });
        }
        let src = self
            .compute
            .get(from)
            .ok_or(OrchestratorError::UnknownComputeBrick { brick: from })?;
        if !src.vm_cores.contains_key(&vcpus) {
            return Err(OrchestratorError::MismatchedVmRelease { brick: from, vcpus });
        }
        for grant in grants {
            let live = grant
                .grant
                .segments()
                .iter()
                .all(|s| self.pool.segment(s.id).is_some());
            if grant.demand.compute_brick != from
                || grant.rmst_bases.len() != grant.grant.segments().len()
                || !live
            {
                return Err(OrchestratorError::InvalidMigration { from, to });
            }
        }
        if self.failed_compute.contains(&to) {
            return Err(OrchestratorError::BrickFailed { brick: to });
        }
        let dst = self
            .compute
            .get(to)
            .ok_or(OrchestratorError::UnknownComputeBrick { brick: to })?;
        if dst.total_cores - dst.used_cores < vcpus {
            return Err(OrchestratorError::NoComputeCapacity {
                requested_vcpus: vcpus,
            });
        }
        let dst_ports = u32::from(dst.gth_ports);
        let mut dst_attached = dst.attached_segments;
        let segment_count: u32 = grants.iter().map(|g| g.grant.segments().len() as u32).sum();

        let mut service_time = self.timings.request_rpc
            + self.timings.availability_check
            + self.timings.reservation_write;

        // Reserve: hold the destination cores in the two-phase ledger.
        let reservation = self.ledger.reserve(Some(to), vcpus, ByteSize::ZERO);

        // Re-route: install every segment on the destination agent *before*
        // touching the source, so an attach failure rolls back to the exact
        // pre-migration state while the source keeps serving.
        let mut new_bases: Vec<Vec<u64>> = Vec::with_capacity(grants.len());
        let mut attach_failed = false;
        {
            let agent = self
                .agents
                .get_mut(to)
                .expect("agent exists for every registered brick");
            'grants: for grant in grants {
                let mut bases = Vec::with_capacity(grant.grant.segments().len());
                for segment in grant.grant.segments() {
                    let port = PortId::new(to, (dst_attached % dst_ports) as u8);
                    match agent.apply_attach(segment, port) {
                        Ok(outcome) => {
                            service_time += self.timings.agent_push + outcome.control_time;
                            dst_attached += 1;
                            bases.push(outcome.rmst_base);
                        }
                        Err(_) => {
                            attach_failed = true;
                            new_bases.push(bases);
                            break 'grants;
                        }
                    }
                }
                new_bases.push(bases);
            }
            if attach_failed {
                for base in new_bases.iter().flatten() {
                    let _ = agent.apply_detach(*base);
                }
            }
        }
        if attach_failed {
            let _ = self.ledger.rollback(reservation);
            return Err(OrchestratorError::AttachLimit {
                brick: to,
                requested: grants.iter().map(|g| g.grant.total()).sum(),
            });
        }

        // Program circuits towards dMEMBRICKs the destination can't reach.
        let involved: BTreeSet<BrickId> = grants
            .iter()
            .flat_map(|g| g.grant.segments().iter().map(|s| s.membrick))
            .collect();
        let known = self.circuits.get_or_insert_default(to);
        let mut circuits_programmed = 0u32;
        for membrick in &involved {
            if known.insert(*membrick) {
                circuits_programmed += 1;
            }
        }
        service_time += self
            .timings
            .circuit_switch_program
            .saturating_mul(u64::from(circuits_programmed));

        // Switchover: move the core accounting. Nothing past this point can
        // fail — the reservation is fresh and the source's committed cores
        // were validated above.
        self.ledger.commit(reservation)?;
        self.ledger
            .release_committed(Some(from), vcpus, ByteSize::ZERO)?;

        // Drain: unmap the source-side routes and tear down circuits no
        // remaining RMST entry needs.
        {
            let agent = self
                .agents
                .get_mut(from)
                .expect("agent exists for every registered brick");
            for base in grants.iter().flat_map(|g| g.rmst_bases.iter()) {
                if let Ok(t) = agent.apply_detach(*base) {
                    service_time += self.timings.agent_push + t;
                }
            }
        }
        let circuits_torn_down = self.tear_down_unused_circuits(from, &involved);
        service_time += self
            .timings
            .circuit_switch_program
            .saturating_mul(u64::from(circuits_torn_down));

        // Re-index both bricks' capacity slots.
        let src = self.compute.get_mut(from).expect("validated above");
        let holders = src.vm_cores.get_mut(&vcpus).expect("validated above");
        *holders -= 1;
        if *holders == 0 {
            src.vm_cores.remove(&vcpus);
        }
        src.used_cores -= vcpus;
        src.vm_count -= 1;
        src.attached_segments = src.attached_segments.saturating_sub(segment_count);
        let dst = self.compute.get_mut(to).expect("validated above");
        dst.used_cores += vcpus;
        dst.vm_count += 1;
        *dst.vm_cores.entry(vcpus).or_insert(0) += 1;
        dst.attached_segments = dst_attached;
        dst.powered_on = true;
        self.sync_capacity(from);
        self.sync_capacity(to);

        // Re-point the pool's segment ownership and hand back the grants as
        // they now stand on the destination.
        let mut rebased = Vec::with_capacity(grants.len());
        for (grant, bases) in grants.iter().zip(new_bases) {
            let regrant = self
                .pool
                .reassign_owner(&grant.grant, to)
                .expect("segments validated as live above");
            rebased.push(ScaleUpGrant {
                demand: ScaleUpDemand::new(to, grant.demand.amount),
                grant: regrant,
                rmst_bases: bases,
                service_time: grant.service_time,
            });
        }
        service_time += self.timings.reservation_write;

        Ok(MigrationOutcome {
            from,
            to,
            vcpus,
            rebased,
            circuits_programmed,
            circuits_torn_down,
            service_time,
        })
    }

    /// The consolidation-target query: the fullest active brick other than
    /// `exclude` that fits `vcpus` — migrating onto it packs the rack so
    /// the emptied source can be slept.
    pub fn consolidation_target(&self, vcpus: u32, exclude: BrickId) -> Option<BrickId> {
        self.capacity.fullest_active_fit_excluding(vcpus, exclude)
    }

    /// The hotspot-evacuation target query: the emptiest powered brick
    /// other than `exclude` that fits `vcpus`, waking a sleeping brick as a
    /// last resort.
    pub fn evacuation_target(&self, vcpus: u32, exclude: BrickId) -> Option<BrickId> {
        self.capacity
            .emptiest_powered_fit_excluding(vcpus, exclude)
            .or_else(|| {
                self.capacity
                    .first_sleeping_capable_excluding(vcpus, exclude)
            })
    }

    /// Tears down `brick`'s circuits towards the `involved` dMEMBRICKs
    /// that no remaining RMST route needs, returning how many were torn
    /// down (callers charge one switch-programming step per teardown).
    /// Shared by grant release and the migration drain so the circuit view
    /// always equals the set of dMEMBRICKs with live routes.
    fn tear_down_unused_circuits(&mut self, brick: BrickId, involved: &BTreeSet<BrickId>) -> u32 {
        let Some(agent) = self.agents.get(brick) else {
            return 0;
        };
        let Some(routes) = self.circuits.get_mut(brick) else {
            return 0;
        };
        let mut torn_down = 0u32;
        for membrick in involved {
            if agent.tgl().rmst().towards_count(*membrick) == 0 && routes.remove(membrick) {
                torn_down += 1;
            }
        }
        torn_down
    }

    /// Updates the controller's power view of a compute brick, e.g. after a
    /// rack-level power sweep. Placement treats powered-off bricks as
    /// sleeping and wakes them only as a last resort; a successful
    /// [`SdmController::allocate_vm`] on the brick marks it powered on
    /// again.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownComputeBrick`] for unregistered bricks.
    pub fn set_compute_power(
        &mut self,
        brick: BrickId,
        powered_on: bool,
    ) -> Result<(), OrchestratorError> {
        let state = self
            .compute
            .get_mut(brick)
            .ok_or(OrchestratorError::UnknownComputeBrick { brick })?;
        state.powered_on = powered_on;
        self.sync_capacity(brick);
        Ok(())
    }

    /// Updates the controller's power view of an accelerator brick, e.g.
    /// after a rack-level power sweep. Powering off drops the recorded
    /// bitstream (the fabric loses its partial-reconfiguration state), so
    /// future offloads of that kernel pay the PCAP programming again; a
    /// sleeping brick is woken only as a last resort by
    /// [`SdmController::begin_offload`].
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownAcceleratorBrick`] for unregistered
    ///   bricks.
    /// * [`OrchestratorError::AcceleratorBusy`] when switching off a brick
    ///   that still streams sessions; the power view is left untouched.
    pub fn set_accel_power(
        &mut self,
        brick: BrickId,
        powered_on: bool,
    ) -> Result<(), OrchestratorError> {
        let state = self
            .accel
            .get_mut(&brick)
            .ok_or(OrchestratorError::UnknownAcceleratorBrick { brick })?;
        if !powered_on && state.active_sessions > 0 {
            return Err(OrchestratorError::AcceleratorBusy {
                brick,
                sessions: state.active_sessions,
            });
        }
        state.powered_on = powered_on;
        if !powered_on {
            state.loaded = None;
        }
        self.sync_accel(brick);
        Ok(())
    }

    /// Begins an offload session: places the kernel on a dACCELBRICK
    /// already programmed with the needed bitstream if one has a free
    /// streaming slot, else picks the cheapest reprogram by PCAP time
    /// (empty slot first, then an idle loaded one, waking a sleeping brick
    /// as a last resort), programs the optical circuit from the VM's
    /// compute brick if none exists, takes a ledger hold on the session's
    /// streaming slot, and pushes the session configuration to the
    /// accelerator middleware.
    ///
    /// Rejections leave the controller bit-identical to before the call,
    /// like [`SdmController::migrate_vm`].
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownComputeBrick`] for unregistered
    ///   compute bricks.
    /// * [`OrchestratorError::NoAcceleratorCapacity`] when every
    ///   accelerator is saturated with sessions of other kernels.
    pub fn begin_offload(
        &mut self,
        request: OffloadRequest,
    ) -> Result<OffloadGrant, OrchestratorError> {
        // Validation phase: every rejection below leaves the controller
        // untouched.
        if !self.compute.contains_key(request.compute_brick) {
            return Err(OrchestratorError::UnknownComputeBrick {
                brick: request.compute_brick,
            });
        }
        if self.failed_compute.contains(&request.compute_brick) {
            return Err(OrchestratorError::BrickFailed {
                brick: request.compute_brick,
            });
        }
        let name = &request.bitstream.name;
        let (accel_brick, reused, woke) = if let Some(b) = self.accel_index.loaded_fit(name) {
            (b, true, false)
        } else if let Some(b) = self.accel_index.fastest_empty() {
            (b, false, false)
        } else if let Some(b) = self.accel_index.fastest_idle_loaded() {
            (b, false, false)
        } else if let Some(b) = self.accel_index.fastest_sleeping() {
            (b, false, true)
        } else {
            return Err(OrchestratorError::NoAcceleratorCapacity {
                bitstream: name.clone(),
            });
        };

        // Nothing past placement can fail: reserve the streaming slot in
        // the two-phase ledger (one "core" on the accelerator brick per
        // session, so ledger holds always equal live sessions), then apply.
        let mut service_time = self.timings.request_rpc
            + self.timings.availability_check
            + self.timings.reservation_write;
        let reservation = self.ledger.reserve(Some(accel_brick), 1, ByteSize::ZERO);
        self.ledger
            .commit(reservation)
            .expect("freshly reserved id commits");

        let state = self
            .accel
            .get_mut(&accel_brick)
            .expect("index only holds registered bricks");
        let mut pcap_time = SimDuration::ZERO;
        if !reused {
            // PCAP partial reconfiguration (middleware stores the
            // bitstream, then reconfigures the PL through the static part).
            pcap_time = state.pcap_time(request.bitstream.size);
            service_time += pcap_time;
            state.loaded = Some(name.clone());
        }
        state.active_sessions += 1;
        state.powered_on = true;
        self.sync_accel(accel_brick);

        // Program the compute→accelerator circuit if this pair has none.
        let routes = self
            .accel_circuits
            .entry(request.compute_brick)
            .or_default();
        let users = routes.entry(accel_brick).or_insert(0);
        let circuit_programmed = *users == 0;
        *users += 1;
        if circuit_programmed {
            service_time += self.timings.circuit_switch_program;
        }
        // Push the session configuration to the accelerator middleware.
        service_time += self.timings.agent_push;

        let id = OffloadSessionId(self.next_session);
        self.next_session += 1;
        let session = OffloadSession {
            id,
            compute_brick: request.compute_brick,
            accel_brick,
            bitstream: name.clone(),
            input: request.input,
        };
        self.sessions.insert(id, session.clone());

        Ok(OffloadGrant {
            session,
            reused_bitstream: reused,
            woke_brick: woke,
            circuit_programmed,
            pcap_time,
            service_time,
        })
    }

    /// Ends an offload session: drops the ledger hold, frees the streaming
    /// slot (the bitstream stays loaded for reuse), and tears down the
    /// compute→accelerator circuit if no other session between the pair
    /// needs it — re-indexing the accelerator incrementally.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::NoSuchOffloadSession`] for unknown or
    ///   already-ended sessions; the controller is left untouched.
    pub fn end_offload(
        &mut self,
        session: OffloadSessionId,
    ) -> Result<OffloadRelease, OrchestratorError> {
        let record = self
            .sessions
            .remove(&session)
            .ok_or(OrchestratorError::NoSuchOffloadSession { session })?;
        self.ledger
            .release_committed(Some(record.accel_brick), 1, ByteSize::ZERO)
            .expect("begin_offload committed this hold");
        let mut service_time =
            self.timings.request_rpc + self.timings.reservation_write + self.timings.agent_push;

        let state = self
            .accel
            .get_mut(&record.accel_brick)
            .expect("sessions only reference registered bricks");
        state.active_sessions -= 1;
        self.sync_accel(record.accel_brick);

        let mut circuit_torn_down = false;
        if let Some(routes) = self.accel_circuits.get_mut(&record.compute_brick) {
            if let Some(users) = routes.get_mut(&record.accel_brick) {
                *users -= 1;
                if *users == 0 {
                    routes.remove(&record.accel_brick);
                    circuit_torn_down = true;
                    service_time += self.timings.circuit_switch_program;
                }
            }
            if routes.is_empty() {
                self.accel_circuits.remove(&record.compute_brick);
            }
        }

        Ok(OffloadRelease {
            session: record,
            circuit_torn_down,
            service_time,
        })
    }

    /// Handles one scale-up demand: selects dMEMBRICK space (power-aware),
    /// reserves it, programs any new circuit, and pushes the attach
    /// configuration to the brick's SDM agent.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownComputeBrick`] for unregistered bricks.
    /// * Memory-pool errors when the pool cannot cover the demand.
    /// * [`OrchestratorError::AttachLimit`] if the agent cannot install the
    ///   mapping (RMST or remote-window exhaustion).
    pub fn handle_scale_up(
        &mut self,
        demand: ScaleUpDemand,
    ) -> Result<ScaleUpGrant, OrchestratorError> {
        if !self.compute.contains_key(demand.compute_brick) {
            return Err(OrchestratorError::UnknownComputeBrick {
                brick: demand.compute_brick,
            });
        }
        if self.failed_compute.contains(&demand.compute_brick) {
            return Err(OrchestratorError::BrickFailed {
                brick: demand.compute_brick,
            });
        }
        let mut service_time = self.timings.request_rpc
            + self.timings.availability_check
            + self.timings.reservation_write;

        // Reserve, then carve the grant out of the pool.
        let reservation = self.ledger.reserve(None, 0, demand.amount);
        let grant = match self.pool.allocate(demand.compute_brick, demand.amount) {
            Ok(g) => g,
            Err(e) => {
                let _ = self.ledger.rollback(reservation);
                return Err(e.into());
            }
        };

        // Program circuits towards dMEMBRICKs this brick does not reach yet
        // (remembering which ones, so a failed attach can unwind them).
        let known = self.circuits.get_or_insert_default(demand.compute_brick);
        let mut new_circuits: Vec<BrickId> = Vec::new();
        for segment in grant.segments() {
            if known.insert(segment.membrick) {
                new_circuits.push(segment.membrick);
            }
        }
        service_time += self
            .timings
            .circuit_switch_program
            .saturating_mul(new_circuits.len() as u64);

        // Push the attach configuration to the SDM agent.
        let state = self
            .compute
            .get_mut(demand.compute_brick)
            .expect("checked above");
        let agent = self
            .agents
            .get_mut(demand.compute_brick)
            .expect("agent exists for every registered brick");
        let mut rmst_bases = Vec::with_capacity(grant.segments().len());
        for segment in grant.segments() {
            let port_index = (state.attached_segments % u32::from(state.gth_ports)) as u8;
            let port = PortId::new(demand.compute_brick, port_index);
            match agent.apply_attach(segment, port) {
                Ok(outcome) => {
                    service_time += self.timings.agent_push + outcome.control_time;
                    state.attached_segments += 1;
                    rmst_bases.push(outcome.rmst_base);
                }
                Err(_) => {
                    // Roll everything back: agent mappings, freshly
                    // programmed circuits, pool grant, reservation.
                    for base in &rmst_bases {
                        let _ = agent.apply_detach(*base);
                    }
                    if let Some(routes) = self.circuits.get_mut(demand.compute_brick) {
                        for membrick in &new_circuits {
                            routes.remove(membrick);
                        }
                    }
                    let _ = self.pool.release_grant(&grant);
                    let _ = self.ledger.rollback(reservation);
                    return Err(OrchestratorError::AttachLimit {
                        brick: demand.compute_brick,
                        requested: demand.amount,
                    });
                }
            }
        }
        self.ledger.commit(reservation)?;
        Ok(ScaleUpGrant {
            demand,
            grant,
            rmst_bases,
            service_time,
        })
    }

    /// Releases a previous scale-up grant: detaches the RMST mappings and
    /// returns the segments to the pool. Returns the controller service
    /// time of the release.
    ///
    /// # Errors
    ///
    /// Propagates pool errors for unknown segments.
    pub fn release_scale_up(
        &mut self,
        grant: &ScaleUpGrant,
    ) -> Result<SimDuration, OrchestratorError> {
        let mut service_time = self.timings.request_rpc + self.timings.reservation_write;
        if let Some(agent) = self.agents.get_mut(grant.demand.compute_brick) {
            for base in &grant.rmst_bases {
                if let Ok(t) = agent.apply_detach(*base) {
                    service_time += self.timings.agent_push + t;
                }
            }
        }
        // Tear down circuits no remaining RMST route needs, so the
        // controller's circuit view tracks the data path (and future
        // scale-ups to that dMEMBRICK re-program the switch, as the
        // hardware would).
        let involved: BTreeSet<BrickId> =
            grant.grant.segments().iter().map(|s| s.membrick).collect();
        let torn_down = self.tear_down_unused_circuits(grant.demand.compute_brick, &involved);
        service_time += self
            .timings
            .circuit_switch_program
            .saturating_mul(u64::from(torn_down));
        self.pool.release_grant(&grant.grant)?;
        self.ledger
            .release_committed(None, 0, grant.grant.total())?;
        Ok(service_time)
    }

    /// Processes a burst of concurrent scale-up demands. The SDM controller
    /// is a single autonomous service, so requests are serialized through a
    /// [`ControlPlaneQueue`]: each request's completion delay includes the
    /// service times of the requests queued ahead of it plus the
    /// per-queued-request contention penalty
    /// ([`SdmTimings::queued_request_penalty`]) — the "aggressiveness of
    /// scale-up concurrency" effect visible in Figure 10, charged by the
    /// same queue model the scenario engine and the scale-out baseline use.
    ///
    /// Returns, for each demand (in order), the grant and its completion
    /// delay (queueing + own service time). Demands that fail are skipped.
    pub fn scale_up_burst(
        &mut self,
        demands: &[ScaleUpDemand],
    ) -> Vec<(ScaleUpGrant, SimDuration)> {
        let mut queue = ControlPlaneQueue::new(self.timings.queued_request_penalty);
        let mut results = Vec::with_capacity(demands.len());
        for demand in demands {
            match self.handle_scale_up(*demand) {
                Ok(grant) => {
                    let admission = queue.admit(SimTime::ZERO, grant.service_time);
                    results.push((grant, admission.completion.duration_since(SimTime::ZERO)));
                }
                Err(_) => continue,
            }
        }
        results
    }

    // --- Fault injection -------------------------------------------------

    /// Compute bricks currently failed, ascending.
    pub fn failed_compute_bricks(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.failed_compute.iter().copied()
    }

    /// Whether `brick` is a failed compute brick.
    pub fn is_compute_failed(&self, brick: BrickId) -> bool {
        self.failed_compute.contains(&brick)
    }

    /// Accelerator bricks currently failed, ascending.
    pub fn failed_accel_bricks(&self) -> impl Iterator<Item = BrickId> + '_ {
        self.failed_accel.iter().copied()
    }

    /// Whether `brick` is a failed accelerator brick.
    pub fn is_accel_failed(&self, brick: BrickId) -> bool {
        self.failed_accel.contains(&brick)
    }

    /// Marks a dCOMPUBRICK failed: it leaves the capacity index and is
    /// refused as a placement, migration or scale-up target, while staying
    /// registered so its live state can be drained through the normal
    /// release / migration paths. Returns `false` if it was already failed
    /// (a no-op).
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownComputeBrick`] for unregistered bricks.
    pub fn fail_compute_brick(&mut self, brick: BrickId) -> Result<bool, OrchestratorError> {
        if !self.compute.contains_key(brick) {
            return Err(OrchestratorError::UnknownComputeBrick { brick });
        }
        if !self.failed_compute.insert(brick) {
            return Ok(false);
        }
        // A dead brick draws nothing; the index entry goes with it.
        if let Some(state) = self.compute.get_mut(brick) {
            state.powered_on = false;
        }
        self.sync_capacity(brick);
        Ok(true)
    }

    /// Repairs a previously failed dCOMPUBRICK: the replacement boots
    /// powered-on and rejoins the capacity index. The fault-handling layer
    /// drains VMs at failure time, so the brick's accounting is expected to
    /// be empty here — nothing is zeroed, keeping the ledger authoritative.
    /// Returns `false` if the brick was not failed (a no-op).
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownComputeBrick`] for unregistered bricks.
    pub fn repair_compute_brick(&mut self, brick: BrickId) -> Result<bool, OrchestratorError> {
        if !self.compute.contains_key(brick) {
            return Err(OrchestratorError::UnknownComputeBrick { brick });
        }
        if !self.failed_compute.remove(&brick) {
            return Ok(false);
        }
        if let Some(state) = self.compute.get_mut(brick) {
            state.powered_on = true;
        }
        self.sync_capacity(brick);
        Ok(true)
    }

    /// Marks a dACCELBRICK failed: it leaves the accelerator index and its
    /// partial-reconfiguration state is lost (future offloads of the same
    /// kernel pay the PCAP programming again after repair). Live sessions
    /// stay recorded until the fault-handling layer drains them through
    /// [`SdmController::end_offload`]. Returns `false` if it was already
    /// failed.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownAcceleratorBrick`] for unregistered
    ///   bricks.
    pub fn fail_accel_brick(&mut self, brick: BrickId) -> Result<bool, OrchestratorError> {
        if !self.accel.contains_key(&brick) {
            return Err(OrchestratorError::UnknownAcceleratorBrick { brick });
        }
        if !self.failed_accel.insert(brick) {
            return Ok(false);
        }
        let state = self.accel.get_mut(&brick).expect("checked above");
        state.powered_on = false;
        state.loaded = None;
        self.sync_accel(brick);
        Ok(true)
    }

    /// Repairs a previously failed dACCELBRICK: it boots powered-on with an
    /// empty fabric and rejoins the accelerator index. Returns `false` if
    /// the brick was not failed.
    ///
    /// # Errors
    ///
    /// * [`OrchestratorError::UnknownAcceleratorBrick`] for unregistered
    ///   bricks.
    pub fn repair_accel_brick(&mut self, brick: BrickId) -> Result<bool, OrchestratorError> {
        if !self.accel.contains_key(&brick) {
            return Err(OrchestratorError::UnknownAcceleratorBrick { brick });
        }
        if !self.failed_accel.remove(&brick) {
            return Ok(false);
        }
        let state = self.accel.get_mut(&brick).expect("checked above");
        state.powered_on = true;
        self.sync_accel(brick);
        Ok(true)
    }

    /// Fails a dMEMBRICK through the pool (see
    /// [`MemoryPool::fail_membrick`]) and forgets every compute brick's
    /// circuit towards it — the fibre now leads nowhere, and survivors
    /// re-program the switch on their next scale-up. Returns the lost
    /// segments, ascending by id, so the fault-handling layer can unwind
    /// the grants that referenced them.
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryError::UnknownMemBrick`] for unregistered or
    /// already-failed bricks.
    pub fn fail_membrick(
        &mut self,
        brick: BrickId,
    ) -> Result<Vec<MemorySegment>, OrchestratorError> {
        let lost = self.pool.fail_membrick(brick)?;
        for (_, routes) in self.circuits.iter_mut() {
            routes.remove(&brick);
        }
        Ok(lost)
    }

    /// Repairs a previously failed dMEMBRICK: its full capacity rejoins the
    /// pool empty (the outage wiped the DIMMs). Returns the restored
    /// capacity.
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryError::UnknownMemBrick`] if the brick is not
    /// failed.
    pub fn repair_membrick(&mut self, brick: BrickId) -> Result<ByteSize, OrchestratorError> {
        Ok(self.pool.repair_membrick(brick)?)
    }

    /// Live offload sessions streaming *on* the given accelerator brick,
    /// ascending by id — the drain list when the brick fails.
    pub fn sessions_on_accel(&self, brick: BrickId) -> Vec<OffloadSessionId> {
        self.sessions
            .values()
            .filter(|s| s.accel_brick == brick)
            .map(|s| s.id)
            .collect()
    }

    /// Live offload sessions issued *by* the given compute brick, ascending
    /// by id — the drain list when the brick fails.
    pub fn sessions_from_compute(&self, brick: BrickId) -> Vec<OffloadSessionId> {
        self.sessions
            .values()
            .filter(|s| s.compute_brick == brick)
            .map(|s| s.id)
            .collect()
    }

    /// [`SdmController::release_scale_up`] for grants that may reference
    /// segments lost with a failed dMEMBRICK: live segments return to the
    /// pool, lost ones are skipped, and the ledger hold is released in full
    /// either way so the two-phase accounting stays balanced. Returns the
    /// controller service time and how many bytes were already gone.
    ///
    /// # Errors
    ///
    /// Propagates pool errors other than the tolerated
    /// [`MemoryError::NoSuchSegment`].
    pub fn release_scale_up_lossy(
        &mut self,
        grant: &ScaleUpGrant,
    ) -> Result<(SimDuration, ByteSize), OrchestratorError> {
        let mut service_time = self.timings.request_rpc + self.timings.reservation_write;
        if let Some(agent) = self.agents.get_mut(grant.demand.compute_brick) {
            for base in &grant.rmst_bases {
                if let Ok(t) = agent.apply_detach(*base) {
                    service_time += self.timings.agent_push + t;
                }
            }
        }
        let involved: BTreeSet<BrickId> =
            grant.grant.segments().iter().map(|s| s.membrick).collect();
        let torn_down = self.tear_down_unused_circuits(grant.demand.compute_brick, &involved);
        service_time += self
            .timings
            .circuit_switch_program
            .saturating_mul(u64::from(torn_down));
        let mut lost = 0u64;
        for seg in grant.grant.segments() {
            match self.pool.release(seg.id) {
                Ok(()) => {}
                Err(MemoryError::NoSuchSegment { .. }) => lost += seg.size.as_bytes(),
                Err(e) => return Err(e.into()),
            }
        }
        self.ledger
            .release_committed(None, 0, grant.grant.total())?;
        Ok((service_time, ByteSize::from_bytes(lost)))
    }
}

impl Default for SdmController {
    fn default() -> Self {
        SdmController::dredbox_default()
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_struct!(SdmTimings {
    request_rpc,
    availability_check,
    reservation_write,
    circuit_switch_program,
    agent_push,
    queued_request_penalty,
});
dredbox_snap::snap_struct!(ScaleUpGrant {
    demand,
    grant,
    rmst_bases,
    service_time,
});
dredbox_snap::snap_newtype!(OffloadSessionId(u64));
dredbox_snap::snap_struct!(OffloadSession {
    id,
    compute_brick,
    accel_brick,
    bitstream,
    input,
});
dredbox_snap::snap_struct!(AccelState {
    pcap_bps,
    session_capacity,
    active_sessions,
    loaded,
    powered_on,
});
dredbox_snap::snap_struct!(ComputeState {
    total_cores,
    used_cores,
    vm_count,
    vm_cores,
    gth_ports,
    attached_segments,
    powered_on,
});
dredbox_snap::snap_struct!(SdmController {
    pool,
    ledger,
    agents,
    compute,
    capacity,
    placement,
    timings,
    latency_config,
    circuits,
    accel,
    accel_index,
    accel_circuits,
    sessions,
    next_session,
    failed_compute,
    failed_accel,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> SdmController {
        let mut sdm = SdmController::dredbox_default();
        for b in 0..4u32 {
            sdm.register_compute_brick(BrickId(b), 32, 8);
        }
        for b in 10..14u32 {
            sdm.register_membrick(BrickId(b), ByteSize::from_gib(32));
        }
        sdm
    }

    #[test]
    fn scale_up_grants_memory_and_configures_the_agent() {
        let mut sdm = controller();
        let grant = sdm
            .handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(8)))
            .unwrap();
        assert_eq!(grant.grant.total(), ByteSize::from_gib(8));
        assert_eq!(grant.rmst_bases.len(), grant.grant.segments().len());
        // Service time includes one circuit programming (first contact with
        // that dMEMBRICK) plus the fixed overheads: tens of milliseconds.
        assert!(grant.service_time.as_millis_f64() > 25.0);
        assert!(grant.service_time.as_secs_f64() < 1.0);
        assert_eq!(
            sdm.agent(BrickId(0)).unwrap().mapped_remote_memory(),
            ByteSize::from_gib(8)
        );
        assert_eq!(sdm.pool().total_allocated(), ByteSize::from_gib(8));
        assert_eq!(sdm.ledger().held_memory(), ByteSize::from_gib(8));
    }

    #[test]
    fn second_scale_up_to_the_same_membrick_skips_circuit_programming() {
        let mut sdm = controller();
        let first = sdm
            .handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(4)))
            .unwrap();
        let second = sdm
            .handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(4)))
            .unwrap();
        assert!(second.service_time < first.service_time);
        let delta = first.service_time - second.service_time;
        assert_eq!(delta, SdmTimings::dredbox_default().circuit_switch_program);
    }

    #[test]
    fn release_returns_memory_and_unmaps() {
        let mut sdm = controller();
        let grant = sdm
            .handle_scale_up(ScaleUpDemand::new(BrickId(1), ByteSize::from_gib(16)))
            .unwrap();
        let t = sdm.release_scale_up(&grant).unwrap();
        assert!(t.as_millis_f64() > 0.0);
        assert_eq!(sdm.pool().total_allocated(), ByteSize::ZERO);
        assert_eq!(sdm.ledger().held_memory(), ByteSize::ZERO);
        assert_eq!(
            sdm.agent(BrickId(1)).unwrap().mapped_remote_memory(),
            ByteSize::ZERO
        );
        assert_eq!(sdm.idle_membricks().count(), 4);
    }

    #[test]
    fn vm_allocation_places_cores_and_memory() {
        let mut sdm = controller();
        let (brick, grant) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(24)))
            .unwrap();
        assert!(sdm.compute_brick_count() == 4);
        assert_eq!(grant.grant.total(), ByteSize::from_gib(24));
        assert_eq!(grant.demand.compute_brick, brick);
        assert_eq!(sdm.idle_compute_bricks().count(), 3);
        // Power-aware placement keeps packing the same brick.
        let (brick2, _) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(8)))
            .unwrap();
        assert_eq!(brick, brick2);
        // Impossible requests fail cleanly.
        assert!(matches!(
            sdm.allocate_vm(VmAllocationRequest::new(64, ByteSize::from_gib(1))),
            Err(OrchestratorError::NoComputeCapacity { .. })
        ));
        let before_free = sdm.pool().total_free();
        assert!(sdm
            .allocate_vm(VmAllocationRequest::new(1, ByteSize::from_gib(500)))
            .is_err());
        assert_eq!(
            sdm.pool().total_free(),
            before_free,
            "failed allocation must not leak"
        );
    }

    #[test]
    fn released_vms_return_their_cores_for_re_admission() {
        let mut sdm = SdmController::dredbox_default();
        sdm.register_compute_brick(BrickId(0), 32, 8);
        sdm.register_membrick(BrickId(10), ByteSize::from_gib(32));
        // Fill the brick, then terminate and re-admit: the closed loop must
        // not leak cores or ledger holds.
        for _ in 0..3 {
            let (brick, grant) = sdm
                .allocate_vm(VmAllocationRequest::new(32, ByteSize::from_gib(8)))
                .unwrap();
            // The brick is full now: another VM cannot be placed.
            assert!(matches!(
                sdm.allocate_vm(VmAllocationRequest::new(32, ByteSize::from_gib(8))),
                Err(OrchestratorError::NoComputeCapacity { .. })
            ));
            let t = sdm.release_vm(brick, 32).unwrap();
            assert!(t > SimDuration::ZERO);
            sdm.release_scale_up(&grant).unwrap();
        }
        assert_eq!(sdm.idle_compute_bricks().count(), 1);
        assert_eq!(sdm.ledger().held_memory(), ByteSize::ZERO);
        assert_eq!(sdm.ledger().held_cores(BrickId(0)), 0);
        assert!(matches!(
            sdm.release_vm(BrickId(99), 1),
            Err(OrchestratorError::UnknownComputeBrick { .. })
        ));
        // With no VM left, another release must be rejected without touching
        // the availability view.
        assert!(matches!(
            sdm.release_vm(BrickId(0), 32),
            Err(OrchestratorError::MismatchedVmRelease { .. })
        ));
        // A release spanning several VMs' cores must not pass either: admit
        // a 4-core and an 8-core VM, then try to release "12 cores".
        let (b1, _) = sdm
            .allocate_vm(VmAllocationRequest::new(4, ByteSize::from_gib(1)))
            .unwrap();
        let (b2, _) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(1)))
            .unwrap();
        assert_eq!(b1, b2, "power-aware placement packs one brick");
        assert!(matches!(
            sdm.release_vm(b1, 12),
            Err(OrchestratorError::MismatchedVmRelease { .. })
        ));
        sdm.release_vm(b1, 8).unwrap();
        sdm.release_vm(b1, 4).unwrap();
    }

    #[test]
    fn power_view_steers_placement_away_from_swept_bricks() {
        let mut sdm = controller();
        // Sweep bricks 1-3; placement must now prefer the powered brick 0.
        for b in 1..4u32 {
            sdm.set_compute_power(BrickId(b), false).unwrap();
        }
        let (brick, grant) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(4)))
            .unwrap();
        assert_eq!(brick, BrickId(0));
        sdm.release_vm(brick, 8).unwrap();
        sdm.release_scale_up(&grant).unwrap();
        // With every brick swept, the lowest-id sleeping brick is woken.
        sdm.set_compute_power(BrickId(0), false).unwrap();
        let (woken, _) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(4)))
            .unwrap();
        assert_eq!(woken, BrickId(0));
        assert!(matches!(
            sdm.set_compute_power(BrickId(77), true),
            Err(OrchestratorError::UnknownComputeBrick { .. })
        ));
    }

    #[test]
    fn waking_an_occupied_swept_brick_never_over_commits() {
        let mut sdm = SdmController::dredbox_default();
        sdm.register_compute_brick(BrickId(0), 32, 8);
        sdm.register_membrick(BrickId(10), ByteSize::from_gib(32));
        sdm.allocate_vm(VmAllocationRequest::new(20, ByteSize::from_gib(1)))
            .unwrap();
        // Sweep the brick while its VM still runs, then ask for more cores
        // than remain: the wake fallback selects the brick on total
        // capacity, but the admission must reject rather than over-commit
        // (which would underflow the brick's free-core accounting).
        sdm.set_compute_power(BrickId(0), false).unwrap();
        for request in [
            VmAllocationRequest::new(16, ByteSize::from_gib(1)),
            VmAllocationRequest::new(13, ByteSize::from_gib(1)),
        ] {
            assert!(matches!(
                sdm.allocate_vm(request),
                Err(OrchestratorError::NoComputeCapacity { .. })
            ));
            assert!(matches!(
                sdm.allocate_vm_scan(request),
                Err(OrchestratorError::NoComputeCapacity { .. })
            ));
        }
        // The remaining capacity is still admittable, and the rejected
        // requests left nothing behind in the ledger.
        let (brick, _) = sdm
            .allocate_vm(VmAllocationRequest::new(12, ByteSize::from_gib(1)))
            .unwrap();
        assert_eq!(brick, BrickId(0));
        assert_eq!(sdm.ledger().held_cores(BrickId(0)), 32);
    }

    #[test]
    fn unknown_brick_and_oversize_demands_fail() {
        let mut sdm = controller();
        assert!(matches!(
            sdm.handle_scale_up(ScaleUpDemand::new(BrickId(77), ByteSize::from_gib(1))),
            Err(OrchestratorError::UnknownComputeBrick { .. })
        ));
        assert!(matches!(
            sdm.handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(1_000))),
            Err(OrchestratorError::Memory(_))
        ));
        assert_eq!(sdm.ledger().held_memory(), ByteSize::ZERO);
    }

    #[test]
    fn burst_delays_grow_with_queue_position() {
        let mut sdm = controller();
        let demands: Vec<ScaleUpDemand> = (0..4u32)
            .map(|i| ScaleUpDemand::new(BrickId(i), ByteSize::from_gib(4)))
            .collect();
        let results = sdm.scale_up_burst(&demands);
        assert_eq!(results.len(), 4);
        for pair in results.windows(2) {
            assert!(
                pair[1].1 > pair[0].1,
                "completion delays must be increasing"
            );
        }
        // The last requester waits for everyone ahead of it, plus the
        // queued-request contention penalty of each position it queued at
        // (1 + 2 + 3 requests ahead across the burst).
        let total_service: SimDuration = results.iter().map(|(g, _)| g.service_time).sum();
        let penalties = SdmTimings::dredbox_default()
            .queued_request_penalty
            .saturating_mul(1 + 2 + 3);
        assert_eq!(results.last().unwrap().1, total_service + penalties);
    }

    #[test]
    fn migration_moves_cores_and_reroutes_memory() {
        let mut sdm = controller();
        let (from, grant) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(8)))
            .unwrap();
        let to = BrickId(if from.0 == 3 { 2 } else { 3 });
        let pool_allocated = sdm.pool().total_allocated();

        let outcome = sdm
            .migrate_vm(from, to, 8, std::slice::from_ref(&grant))
            .unwrap();
        assert_eq!(outcome.from, from);
        assert_eq!(outcome.to, to);
        assert_eq!(outcome.rebased.len(), 1);
        // The memory never moved: same segments, same pool totals.
        assert_eq!(sdm.pool().total_allocated(), pool_allocated);
        assert_eq!(
            outcome.rebased[0].grant.segments()[0].id,
            grant.grant.segments()[0].id
        );
        assert_eq!(outcome.rebased[0].demand.compute_brick, to);
        // The routes moved: the source agent maps nothing, the destination
        // maps the full grant; the destination paid circuit programming.
        assert_eq!(
            sdm.agent(from).unwrap().mapped_remote_memory(),
            ByteSize::ZERO
        );
        assert_eq!(
            sdm.agent(to).unwrap().mapped_remote_memory(),
            ByteSize::from_gib(8)
        );
        assert!(outcome.circuits_programmed >= 1);
        assert!(outcome.circuits_torn_down >= 1);
        assert!(outcome.service_time > SimDuration::ZERO);
        // The cores moved: source releasable state is gone, destination has
        // the VM.
        assert!(matches!(
            sdm.release_vm(from, 8),
            Err(OrchestratorError::MismatchedVmRelease { .. })
        ));
        sdm.release_vm(to, 8).unwrap();
        sdm.release_scale_up(&outcome.rebased[0]).unwrap();
        assert_eq!(sdm.pool().total_allocated(), ByteSize::ZERO);
        assert_eq!(sdm.ledger().held_memory(), ByteSize::ZERO);
        assert_eq!(sdm.ledger().held_cores(from), 0);
        assert_eq!(sdm.ledger().held_cores(to), 0);
    }

    #[test]
    fn rejected_migration_leaves_the_controller_untouched() {
        let mut sdm = controller();
        let (from, grant) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(8)))
            .unwrap();
        // Fill the destination brick completely so the cores don't fit.
        let to = BrickId(if from.0 == 3 { 2 } else { 3 });
        let filler = ScaleUpDemand::new(to, ByteSize::from_gib(1));
        let _filler_grant = sdm.handle_scale_up(filler).unwrap();
        // Occupy all of `to`'s cores through the public admission path.
        // (Power off the other bricks so placement must use `to`.)
        for b in 0..4u32 {
            if BrickId(b) != to {
                sdm.set_compute_power(BrickId(b), false).unwrap();
            }
        }
        let (occupied, _) = sdm
            .allocate_vm(VmAllocationRequest::new(32, ByteSize::from_gib(1)))
            .unwrap();
        assert_eq!(occupied, to);
        for b in 0..4u32 {
            sdm.set_compute_power(BrickId(b), true).unwrap();
        }

        let before = sdm.clone();
        // No free cores on the destination.
        assert!(matches!(
            sdm.migrate_vm(from, to, 8, std::slice::from_ref(&grant)),
            Err(OrchestratorError::NoComputeCapacity { .. })
        ));
        assert_eq!(sdm, before, "failed migration must not mutate state");
        // Self-migration and bogus bricks are rejected just as cleanly.
        assert!(matches!(
            sdm.migrate_vm(from, from, 8, std::slice::from_ref(&grant)),
            Err(OrchestratorError::InvalidMigration { .. })
        ));
        assert!(matches!(
            sdm.migrate_vm(from, BrickId(99), 8, std::slice::from_ref(&grant)),
            Err(OrchestratorError::UnknownComputeBrick { .. })
        ));
        assert!(matches!(
            sdm.migrate_vm(from, to, 5, std::slice::from_ref(&grant)),
            Err(OrchestratorError::MismatchedVmRelease { .. })
        ));
        // Grants that don't belong to the source are rejected.
        let stranger = ScaleUpGrant {
            demand: ScaleUpDemand::new(BrickId(99), ByteSize::from_gib(8)),
            ..grant.clone()
        };
        assert!(matches!(
            sdm.migrate_vm(from, to, 8, &[stranger]),
            Err(OrchestratorError::InvalidMigration { .. })
        ));
        assert_eq!(sdm, before);
    }

    fn accel_controller() -> SdmController {
        let mut sdm = controller();
        for b in 20..22u32 {
            sdm.register_accel_brick(BrickId(b), Bandwidth::from_gbps(3.2), 2);
        }
        sdm
    }

    fn offload(kernel: &str) -> OffloadRequest {
        OffloadRequest::new(
            BrickId(0),
            dredbox_bricks::Bitstream::new(kernel, ByteSize::from_mib(16)),
            ByteSize::from_gib(1),
        )
    }

    #[test]
    fn offload_reuses_programmed_bitstreams_and_charges_pcap_otherwise() {
        let mut sdm = accel_controller();
        let first = sdm.begin_offload(offload("sobel")).unwrap();
        assert!(!first.reused_bitstream);
        assert!(first.circuit_programmed);
        assert!(first.pcap_time.as_millis_f64() > 10.0, "16 MiB over PCAP");
        assert_eq!(first.session.accel_brick, BrickId(20));
        assert_eq!(sdm.ledger().held_cores(BrickId(20)), 1);

        // Same kernel: lands on the programmed brick, no PCAP, no new
        // circuit (same compute brick), strictly cheaper.
        let second = sdm.begin_offload(offload("sobel")).unwrap();
        assert!(second.reused_bitstream);
        assert!(!second.circuit_programmed);
        assert_eq!(second.pcap_time, SimDuration::ZERO);
        assert_eq!(second.session.accel_brick, BrickId(20));
        assert!(second.service_time < first.service_time);
        assert_eq!(sdm.offload_session_count(), 2);
        assert_eq!(sdm.ledger().held_cores(BrickId(20)), 2);

        // A different kernel cannot evict the busy brick: it programs the
        // empty one.
        let third = sdm.begin_offload(offload("aes")).unwrap();
        assert!(!third.reused_bitstream);
        assert_eq!(third.session.accel_brick, BrickId(21));

        // Ending the sessions drains holds and tears the circuit down once
        // the last session between the pair ends.
        let rel = sdm.end_offload(second.session.id).unwrap();
        assert!(!rel.circuit_torn_down, "first sobel session still live");
        let rel = sdm.end_offload(first.session.id).unwrap();
        assert!(rel.circuit_torn_down);
        assert_eq!(sdm.ledger().held_cores(BrickId(20)), 0);
        // The bitstream survived for reuse.
        assert_eq!(
            sdm.accel().slot(BrickId(20)).unwrap().loaded.as_deref(),
            Some("sobel")
        );
        sdm.end_offload(third.session.id).unwrap();
        assert_eq!(sdm.offload_session_count(), 0);
        assert_eq!(sdm.idle_accel_bricks().count(), 2);
    }

    #[test]
    fn rejected_offloads_leave_the_controller_untouched() {
        let mut sdm = accel_controller();
        // Saturate both bricks (2 streaming slots each) with two kernels.
        let mut live = Vec::new();
        for kernel in ["a", "a", "b", "b"] {
            live.push(sdm.begin_offload(offload(kernel)).unwrap());
        }
        let before = sdm.clone();
        // A third kernel has no reuse target, no empty slot, no idle loaded
        // brick and nothing sleeping: rejected as a perfect no-op.
        assert!(matches!(
            sdm.begin_offload(offload("c")),
            Err(OrchestratorError::NoAcceleratorCapacity { .. })
        ));
        assert_eq!(sdm, before, "failed offload must not mutate state");
        // Unknown compute bricks and bogus sessions too.
        let mut bogus = offload("a");
        bogus.compute_brick = BrickId(99);
        assert!(matches!(
            sdm.begin_offload(bogus),
            Err(OrchestratorError::UnknownComputeBrick { .. })
        ));
        assert!(matches!(
            sdm.end_offload(OffloadSessionId(999)),
            Err(OrchestratorError::NoSuchOffloadSession { .. })
        ));
        assert_eq!(sdm, before);
        for grant in live {
            sdm.end_offload(grant.session.id).unwrap();
        }
    }

    #[test]
    fn accel_power_view_wakes_and_reprograms_on_demand() {
        let mut sdm = accel_controller();
        let grant = sdm.begin_offload(offload("sobel")).unwrap();
        // A streaming brick cannot be swept off.
        assert!(matches!(
            sdm.set_accel_power(BrickId(20), false),
            Err(OrchestratorError::AcceleratorBusy { sessions: 1, .. })
        ));
        sdm.end_offload(grant.session.id).unwrap();
        // Sweeping both bricks drops the cached bitstreams.
        sdm.set_accel_power(BrickId(20), false).unwrap();
        sdm.set_accel_power(BrickId(21), false).unwrap();
        assert!(sdm.accel().slot(BrickId(20)).unwrap().loaded.is_none());
        // The next offload wakes a sleeping brick and pays the PCAP again.
        let woken = sdm.begin_offload(offload("sobel")).unwrap();
        assert!(woken.woke_brick);
        assert!(!woken.reused_bitstream);
        assert_eq!(woken.session.accel_brick, BrickId(20));
        assert!(sdm.accel().slot(BrickId(20)).unwrap().powered_on);
        assert!(matches!(
            sdm.set_accel_power(BrickId(77), true),
            Err(OrchestratorError::UnknownAcceleratorBrick { .. })
        ));
    }

    #[test]
    fn consolidation_and_evacuation_targets_exclude_the_source() {
        let mut sdm = controller();
        let (brick, _) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(4)))
            .unwrap();
        // Only one active brick: consolidation has nowhere else to pack.
        assert_eq!(sdm.consolidation_target(8, brick), None);
        // Evacuation spreads onto the emptiest other brick.
        let target = sdm.evacuation_target(8, brick).unwrap();
        assert_ne!(target, brick);
        // With everything else asleep, evacuation wakes a sleeping brick.
        for b in 0..4u32 {
            if BrickId(b) != brick {
                sdm.set_compute_power(BrickId(b), false).unwrap();
            }
        }
        let woken = sdm.evacuation_target(8, brick).unwrap();
        assert_ne!(woken, brick);
    }

    #[test]
    fn failed_compute_bricks_leave_placement_until_repair() {
        let mut sdm = controller();
        // Power-aware placement would pick brick 0; fail it.
        assert!(sdm.fail_compute_brick(BrickId(0)).unwrap());
        assert!(!sdm.fail_compute_brick(BrickId(0)).unwrap(), "idempotent");
        assert!(sdm.is_compute_failed(BrickId(0)));
        let (brick, grant) = sdm
            .allocate_vm(VmAllocationRequest::new(8, ByteSize::from_gib(4)))
            .unwrap();
        assert_ne!(brick, BrickId(0));
        // Scale-ups, migrations and offloads towards the dead brick are
        // refused without touching state.
        let before = sdm.clone();
        assert!(matches!(
            sdm.handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(1))),
            Err(OrchestratorError::BrickFailed { .. })
        ));
        assert!(matches!(
            sdm.migrate_vm(brick, BrickId(0), 8, std::slice::from_ref(&grant)),
            Err(OrchestratorError::BrickFailed { .. })
        ));
        assert_eq!(sdm, before);
        // Repair returns it to the index; power-aware packing prefers the
        // already-active brick, but an exact query can land on it again.
        assert!(sdm.repair_compute_brick(BrickId(0)).unwrap());
        assert!(!sdm.repair_compute_brick(BrickId(0)).unwrap());
        assert!(sdm.capacity().slot(BrickId(0)).is_some());
        assert!(matches!(
            sdm.fail_compute_brick(BrickId(99)),
            Err(OrchestratorError::UnknownComputeBrick { .. })
        ));
    }

    #[test]
    fn membrick_failure_loses_segments_and_lossy_release_balances_the_ledger() {
        let mut sdm = controller();
        let grant = sdm
            .handle_scale_up(ScaleUpDemand::new(BrickId(0), ByteSize::from_gib(8)))
            .unwrap();
        let victim = grant.grant.segments()[0].membrick;
        let lost = sdm.fail_membrick(victim).unwrap();
        assert!(!lost.is_empty());
        // The strict release would trip over the lost segments; the lossy
        // one skips them and still zeroes the ledger hold.
        let (t, lost_bytes) = sdm.release_scale_up_lossy(&grant).unwrap();
        assert!(t.as_millis_f64() > 0.0);
        assert_eq!(lost_bytes, ByteSize::from_gib(8));
        assert_eq!(sdm.ledger().held_memory(), ByteSize::ZERO);
        assert_eq!(sdm.pool().total_allocated(), ByteSize::ZERO);
        // Repair restores the full capacity, empty.
        let restored = sdm.repair_membrick(victim).unwrap();
        assert_eq!(restored, ByteSize::from_gib(32));
        assert!(sdm.repair_membrick(victim).is_err(), "not failed twice");
    }

    #[test]
    fn failed_accelerators_drain_and_rejoin_with_a_cold_fabric() {
        let mut sdm = accel_controller();
        let first = sdm.begin_offload(offload("sobel")).unwrap();
        let target = first.session.accel_brick;
        assert!(sdm.fail_accel_brick(target).unwrap());
        assert!(!sdm.fail_accel_brick(target).unwrap(), "idempotent");
        // The drain list names the stranded session; ending it keeps the
        // ledger balanced even though the brick is dead.
        let stranded = sdm.sessions_on_accel(target);
        assert_eq!(stranded, vec![first.session.id]);
        sdm.end_offload(first.session.id).unwrap();
        assert_eq!(sdm.ledger().held_cores(target), 0);
        // Placement avoids the dead brick; retry lands on the survivor.
        let retry = sdm.begin_offload(offload("sobel")).unwrap();
        assert_ne!(retry.session.accel_brick, target);
        sdm.end_offload(retry.session.id).unwrap();
        // Repair brings it back powered-on with no bitstream loaded.
        assert!(sdm.repair_accel_brick(target).unwrap());
        let slot = sdm.accel().slot(target).unwrap();
        assert!(slot.powered_on && slot.loaded.is_none());
        assert!(matches!(
            sdm.fail_accel_brick(BrickId(99)),
            Err(OrchestratorError::UnknownAcceleratorBrick { .. })
        ));
    }
}
