//! VM placement over dCOMPUBRICKs.
//!
//! Role (b) of the SDM controller: "safely inspect resource availability and
//! make a power-consumption conscious selection of resources". Compute is
//! not disaggregated below the brick level, so a VM's vCPUs must all come
//! from one dCOMPUBRICK; its memory comes from the pool.

use serde::{Deserialize, Serialize};

use dredbox_bricks::BrickId;

use crate::capacity::CapacityIndex;

/// A snapshot of one compute brick as seen by the placement logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputeBrickView {
    /// The brick.
    pub brick: BrickId,
    /// Total schedulable cores.
    pub total_cores: u32,
    /// Cores still free (after subtracting reservations).
    pub free_cores: u32,
    /// Whether the brick currently runs at least one VM.
    pub active: bool,
    /// Whether the brick is powered on.
    pub powered_on: bool,
}

impl ComputeBrickView {
    /// Whether `vcpus` fit on the brick right now.
    pub fn fits(&self, vcpus: u32) -> bool {
        self.powered_on && self.free_cores >= vcpus
    }
}

/// Placement policy for choosing the dCOMPUBRICK that hosts a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// First brick (in id order) with enough free cores — the FCFS policy of
    /// the TCO study.
    #[default]
    FirstFit,
    /// Prefer bricks that already run VMs, waking sleeping bricks only when
    /// necessary — the power-conscious selection.
    PowerAware,
    /// Prefer the brick with the most free cores, spreading load.
    Balanced,
}

impl PlacementPolicy {
    /// Chooses a brick for a VM needing `vcpus`, or `None` if no powered-on
    /// (or wakeable) brick fits it. Bricks that are powered off are
    /// considered only by the policies that are allowed to wake them
    /// (all of them, as a last resort).
    ///
    /// Score ties always break on the lowest [`BrickId`], independent of the
    /// order `bricks` is passed in, so placement is deterministic — the
    /// scenario engine's same-seed replay guarantee depends on it.
    ///
    /// This is the reference implementation: a single allocation-free pass
    /// over the slice per query, `O(bricks)`. The production request path
    /// uses [`PlacementPolicy::choose_indexed`], which answers the same
    /// queries from a [`CapacityIndex`] in `O(log n)`; a property test keeps
    /// the two decision-for-decision identical.
    pub fn choose(self, bricks: &[ComputeBrickView], vcpus: u32) -> Option<BrickId> {
        use std::cmp::Reverse;

        let powered = || bricks.iter().filter(|b| b.powered_on);
        let fits = move |b: &&ComputeBrickView| b.free_cores >= vcpus;

        let choice = match self {
            PlacementPolicy::FirstFit => powered().filter(fits).map(|b| b.brick).min(),
            PlacementPolicy::PowerAware => powered()
                .filter(|b| b.active)
                .filter(fits)
                .min_by_key(|b| (b.free_cores, b.brick))
                .or_else(|| {
                    powered()
                        .filter(fits)
                        .min_by_key(|b| (b.free_cores, b.brick))
                })
                .map(|b| b.brick),
            PlacementPolicy::Balanced => powered()
                .filter(fits)
                .max_by_key(|b| (b.free_cores, Reverse(b.brick)))
                .map(|b| b.brick),
        };
        choice.or_else(|| {
            // Last resort for every policy: wake a sleeping brick that
            // could host the VM at full capacity.
            bricks
                .iter()
                .filter(|b| !b.powered_on && b.total_cores >= vcpus)
                .map(|b| b.brick)
                .min()
        })
    }

    /// Answers the same query as [`PlacementPolicy::choose`] from the
    /// incrementally maintained [`CapacityIndex`] — `O(log n)` per request
    /// with zero heap allocation, instead of a fresh `O(bricks)` snapshot
    /// scan. Decision-for-decision identical to the reference scan,
    /// including every lowest-[`BrickId`] tie-break.
    pub fn choose_indexed(self, index: &CapacityIndex, vcpus: u32) -> Option<BrickId> {
        let choice = match self {
            PlacementPolicy::FirstFit => index.first_powered_fit(vcpus),
            PlacementPolicy::PowerAware => index
                .fullest_active_fit(vcpus)
                .or_else(|| index.fullest_powered_fit(vcpus)),
            PlacementPolicy::Balanced => index.emptiest_powered_fit(vcpus),
        };
        choice.or_else(|| index.first_sleeping_capable(vcpus))
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_unit_enum!(PlacementPolicy {
    FirstFit = 0,
    PowerAware = 1,
    Balanced = 2,
});

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u32, total: u32, free: u32, active: bool, on: bool) -> ComputeBrickView {
        ComputeBrickView {
            brick: BrickId(id),
            total_cores: total,
            free_cores: free,
            active,
            powered_on: on,
        }
    }

    #[test]
    fn first_fit_takes_lowest_id_that_fits() {
        let bricks = [
            view(0, 32, 2, true, true),
            view(1, 32, 16, true, true),
            view(2, 32, 32, false, true),
        ];
        assert_eq!(
            PlacementPolicy::FirstFit.choose(&bricks, 8),
            Some(BrickId(1))
        );
        assert_eq!(
            PlacementPolicy::FirstFit.choose(&bricks, 1),
            Some(BrickId(0))
        );
        assert_eq!(PlacementPolicy::FirstFit.choose(&bricks, 33), None);
    }

    #[test]
    fn power_aware_packs_active_bricks_first() {
        let bricks = [
            view(0, 32, 32, false, true),
            view(1, 32, 10, true, true),
            view(2, 32, 20, true, true),
        ];
        // Fits on an active brick: pick the fullest active brick that fits.
        assert_eq!(
            PlacementPolicy::PowerAware.choose(&bricks, 8),
            Some(BrickId(1))
        );
        // Too big for active bricks: fall back to any powered brick.
        assert_eq!(
            PlacementPolicy::PowerAware.choose(&bricks, 30),
            Some(BrickId(0))
        );
    }

    #[test]
    fn balanced_spreads_load() {
        let bricks = [view(0, 32, 12, true, true), view(1, 32, 30, false, true)];
        assert_eq!(
            PlacementPolicy::Balanced.choose(&bricks, 8),
            Some(BrickId(1))
        );
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::FirstFit);
    }

    #[test]
    fn sleeping_bricks_are_woken_only_as_a_last_resort() {
        let bricks = [
            view(0, 32, 4, true, true),
            view(1, 32, 0, false, false), // powered off, full capacity available once woken
        ];
        // Fits on the powered brick: do not wake.
        assert_eq!(
            PlacementPolicy::PowerAware.choose(&bricks, 4),
            Some(BrickId(0))
        );
        // Does not fit: wake the sleeping brick.
        assert_eq!(
            PlacementPolicy::PowerAware.choose(&bricks, 16),
            Some(BrickId(1))
        );
        assert_eq!(
            PlacementPolicy::FirstFit.choose(&bricks, 16),
            Some(BrickId(1))
        );
        // Nothing can host 64 cores.
        assert_eq!(PlacementPolicy::FirstFit.choose(&bricks, 64), None);
    }

    #[test]
    fn tie_breaks_are_deterministic_by_lowest_brick_id() {
        // Equal scores in deliberately unsorted input order: every policy
        // must resolve the tie to the lowest BrickId, not the slice order.
        let tied = [
            view(3, 32, 16, true, true),
            view(1, 32, 16, true, true),
            view(2, 32, 16, true, true),
        ];
        assert_eq!(PlacementPolicy::Balanced.choose(&tied, 4), Some(BrickId(1)));
        assert_eq!(
            PlacementPolicy::PowerAware.choose(&tied, 4),
            Some(BrickId(1))
        );
        assert_eq!(PlacementPolicy::FirstFit.choose(&tied, 4), Some(BrickId(1)));
        // The sleeping-brick fallback is deterministic too.
        let asleep = [view(7, 32, 0, false, false), view(5, 32, 0, false, false)];
        for policy in [
            PlacementPolicy::FirstFit,
            PlacementPolicy::PowerAware,
            PlacementPolicy::Balanced,
        ] {
            assert_eq!(policy.choose(&asleep, 8), Some(BrickId(5)));
        }
    }

    #[test]
    fn fits_respects_power_state() {
        assert!(view(0, 32, 8, false, true).fits(8));
        assert!(!view(0, 32, 8, false, false).fits(8));
        assert!(!view(0, 32, 4, false, true).fits(8));
    }
}
