//! Error type for the orchestration layer.

use std::fmt;

use dredbox_bricks::BrickId;
use dredbox_memory::MemoryError;
use dredbox_sim::units::ByteSize;

use crate::reservation::ReservationId;
use crate::sdm_controller::OffloadSessionId;

/// Errors produced by the SDM controller and its helpers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OrchestratorError {
    /// No compute brick can host the requested vCPUs.
    NoComputeCapacity {
        /// vCPUs requested.
        requested_vcpus: u32,
    },
    /// The memory pool could not satisfy the request.
    Memory(MemoryError),
    /// The referenced reservation does not exist or was already finalized.
    NoSuchReservation {
        /// Offending reservation.
        reservation: ReservationId,
    },
    /// The referenced compute brick is unknown to the orchestrator.
    UnknownComputeBrick {
        /// Offending brick.
        brick: BrickId,
    },
    /// The compute brick cannot be granted that much more remote memory
    /// (e.g. its remote window or RMST is exhausted).
    AttachLimit {
        /// The limited brick.
        brick: BrickId,
        /// Amount requested.
        requested: ByteSize,
    },
    /// A VM release did not match the brick's recorded allocations (more
    /// cores than are in use, or no VM left to release).
    MismatchedVmRelease {
        /// Offending brick.
        brick: BrickId,
        /// Cores the caller tried to release.
        vcpus: u32,
    },
    /// A migration request was malformed: source and destination are the
    /// same brick, or the presented grants do not belong to the source.
    InvalidMigration {
        /// The brick the VM was said to run on.
        from: BrickId,
        /// The requested destination.
        to: BrickId,
    },
    /// No dACCELBRICK can host the offload: every registered accelerator is
    /// saturated with sessions of other kernels.
    NoAcceleratorCapacity {
        /// The bitstream the request needed.
        bitstream: String,
    },
    /// The referenced accelerator brick is unknown to the orchestrator.
    UnknownAcceleratorBrick {
        /// Offending brick.
        brick: BrickId,
    },
    /// The referenced offload session does not exist or was already ended.
    NoSuchOffloadSession {
        /// Offending session.
        session: OffloadSessionId,
    },
    /// An accelerator brick still streams offload sessions, so its power
    /// view cannot be flipped off.
    AcceleratorBusy {
        /// Offending brick.
        brick: BrickId,
        /// Sessions still in flight.
        sessions: u32,
    },
    /// The referenced brick is marked failed by fault injection, so it
    /// cannot serve as a placement, migration or scale-up target until it
    /// is repaired.
    BrickFailed {
        /// The failed brick.
        brick: BrickId,
    },
}

impl fmt::Display for OrchestratorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestratorError::NoComputeCapacity { requested_vcpus } => {
                write!(f, "no dCOMPUBRICK has {requested_vcpus} free cores")
            }
            OrchestratorError::Memory(e) => write!(f, "memory pool error: {e}"),
            OrchestratorError::NoSuchReservation { reservation } => {
                write!(f, "no such reservation: {reservation}")
            }
            OrchestratorError::UnknownComputeBrick { brick } => {
                write!(f, "unknown dCOMPUBRICK: {brick}")
            }
            OrchestratorError::AttachLimit { brick, requested } => {
                write!(f, "{brick} cannot attach another {requested}")
            }
            OrchestratorError::MismatchedVmRelease { brick, vcpus } => {
                write!(f, "{brick} has no VM holding {vcpus} cores to release")
            }
            OrchestratorError::InvalidMigration { from, to } => {
                write!(f, "invalid migration from {from} to {to}")
            }
            OrchestratorError::NoAcceleratorCapacity { bitstream } => {
                write!(f, "no dACCELBRICK can host an offload of '{bitstream}'")
            }
            OrchestratorError::UnknownAcceleratorBrick { brick } => {
                write!(f, "unknown dACCELBRICK: {brick}")
            }
            OrchestratorError::NoSuchOffloadSession { session } => {
                write!(f, "no such offload session: {session}")
            }
            OrchestratorError::AcceleratorBusy { brick, sessions } => {
                write!(f, "{brick} still streams {sessions} offload session(s)")
            }
            OrchestratorError::BrickFailed { brick } => {
                write!(f, "{brick} is failed and awaiting repair")
            }
        }
    }
}

impl std::error::Error for OrchestratorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrchestratorError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemoryError> for OrchestratorError {
    fn from(e: MemoryError) -> Self {
        OrchestratorError::Memory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = OrchestratorError::NoComputeCapacity {
            requested_vcpus: 16,
        };
        assert!(e.to_string().contains("16"));
        let m: OrchestratorError = MemoryError::EmptyRequest.into();
        assert!(m.source().is_some());
        assert!(m.to_string().contains("memory pool"));
        assert!(OrchestratorError::UnknownComputeBrick { brick: BrickId(2) }
            .to_string()
            .contains("brick2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OrchestratorError>();
    }
}
