//! Safe, two-phase resource reservation.
//!
//! Role (c) of the SDM controller is to "safely reserve selected resources":
//! between inspecting availability and pushing device configurations, the
//! chosen resources must not be handed to a competing request. The ledger
//! keeps tentative reservations that are later either committed (the
//! configuration was pushed successfully) or rolled back (something failed).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use dredbox_bricks::{BrickId, BrickMap};
use dredbox_sim::units::ByteSize;

use crate::error::OrchestratorError;

/// Identifier of a pending reservation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ReservationId(pub u64);

impl std::fmt::Display for ReservationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "reservation{}", self.0)
    }
}

/// A tentative hold on resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reservation {
    /// Reservation identifier.
    pub id: ReservationId,
    /// The compute brick whose cores are held (if any).
    pub compute_brick: Option<BrickId>,
    /// Cores held on that brick.
    pub cores: u32,
    /// Disaggregated memory held (pool-level, not yet carved into segments).
    pub memory: ByteSize,
}

/// The ledger of pending and committed holds.
///
/// The ledger tracks *quantities*, not placements: it answers "how much of
/// brick X's cores / of the pool's memory is already spoken for by requests
/// that are still being configured", which is what the availability
/// inspection of a later request must subtract.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReservationLedger {
    pending: BTreeMap<ReservationId, Reservation>,
    committed_cores: BrickMap<u32>,
    committed_memory: ByteSize,
    next_id: u64,
}

impl ReservationLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        ReservationLedger::default()
    }

    /// Opens a tentative reservation.
    pub fn reserve(
        &mut self,
        compute_brick: Option<BrickId>,
        cores: u32,
        memory: ByteSize,
    ) -> ReservationId {
        let id = ReservationId(self.next_id);
        self.next_id += 1;
        self.pending.insert(
            id,
            Reservation {
                id,
                compute_brick,
                cores,
                memory,
            },
        );
        id
    }

    /// Commits a pending reservation (configuration was pushed).
    ///
    /// # Errors
    ///
    /// Returns [`OrchestratorError::NoSuchReservation`] if the id is unknown
    /// or already finalized.
    pub fn commit(&mut self, id: ReservationId) -> Result<Reservation, OrchestratorError> {
        let r = self
            .pending
            .remove(&id)
            .ok_or(OrchestratorError::NoSuchReservation { reservation: id })?;
        if let Some(brick) = r.compute_brick {
            *self.committed_cores.get_or_insert_default(brick) += r.cores;
        }
        self.committed_memory += r.memory;
        Ok(r)
    }

    /// Rolls back a pending reservation (configuration failed).
    ///
    /// # Errors
    ///
    /// Returns [`OrchestratorError::NoSuchReservation`] if the id is unknown
    /// or already finalized.
    pub fn rollback(&mut self, id: ReservationId) -> Result<Reservation, OrchestratorError> {
        self.pending
            .remove(&id)
            .ok_or(OrchestratorError::NoSuchReservation { reservation: id })
    }

    /// Releases previously committed resources (VM termination or memory
    /// scale-down).
    ///
    /// # Errors
    ///
    /// Returns [`OrchestratorError::UnknownComputeBrick`] if cores are
    /// released on a brick with no committed cores.
    pub fn release_committed(
        &mut self,
        compute_brick: Option<BrickId>,
        cores: u32,
        memory: ByteSize,
    ) -> Result<(), OrchestratorError> {
        if let Some(brick) = compute_brick {
            let entry = self
                .committed_cores
                .get_mut(brick)
                .ok_or(OrchestratorError::UnknownComputeBrick { brick })?;
            *entry = entry.saturating_sub(cores);
            if *entry == 0 {
                self.committed_cores.remove(brick);
            }
        }
        self.committed_memory = self.committed_memory.saturating_sub(memory);
        Ok(())
    }

    /// Number of reservations still pending.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Cores held (pending plus committed) on a compute brick.
    pub fn held_cores(&self, brick: BrickId) -> u32 {
        let pending: u32 = self
            .pending
            .values()
            .filter(|r| r.compute_brick == Some(brick))
            .map(|r| r.cores)
            .sum();
        pending + self.committed_cores.get(brick).copied().unwrap_or(0)
    }

    /// Memory held (pending plus committed) across the pool.
    pub fn held_memory(&self) -> ByteSize {
        let pending: ByteSize = self.pending.values().map(|r| r.memory).sum();
        pending + self.committed_memory
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_newtype!(ReservationId(u64));
dredbox_snap::snap_struct!(Reservation {
    id,
    compute_brick,
    cores,
    memory,
});
dredbox_snap::snap_struct!(ReservationLedger {
    pending,
    committed_cores,
    committed_memory,
    next_id,
});

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reserve_commit_release_lifecycle() {
        let mut ledger = ReservationLedger::new();
        let id = ledger.reserve(Some(BrickId(1)), 8, ByteSize::from_gib(16));
        assert_eq!(ledger.pending_count(), 1);
        assert_eq!(ledger.held_cores(BrickId(1)), 8);
        assert_eq!(ledger.held_memory(), ByteSize::from_gib(16));

        let r = ledger.commit(id).unwrap();
        assert_eq!(r.cores, 8);
        assert_eq!(ledger.pending_count(), 0);
        // Still held after commit.
        assert_eq!(ledger.held_cores(BrickId(1)), 8);
        assert_eq!(ledger.held_memory(), ByteSize::from_gib(16));
        // Double commit fails.
        assert!(matches!(
            ledger.commit(id),
            Err(OrchestratorError::NoSuchReservation { .. })
        ));

        ledger
            .release_committed(Some(BrickId(1)), 8, ByteSize::from_gib(16))
            .unwrap();
        assert_eq!(ledger.held_cores(BrickId(1)), 0);
        assert_eq!(ledger.held_memory(), ByteSize::ZERO);
        assert!(matches!(
            ledger.release_committed(Some(BrickId(1)), 1, ByteSize::ZERO),
            Err(OrchestratorError::UnknownComputeBrick { .. })
        ));
    }

    #[test]
    fn rollback_releases_the_hold() {
        let mut ledger = ReservationLedger::new();
        let id = ledger.reserve(Some(BrickId(2)), 4, ByteSize::from_gib(8));
        ledger.rollback(id).unwrap();
        assert_eq!(ledger.held_cores(BrickId(2)), 0);
        assert_eq!(ledger.held_memory(), ByteSize::ZERO);
        assert!(matches!(
            ledger.rollback(id),
            Err(OrchestratorError::NoSuchReservation { .. })
        ));
    }

    #[test]
    fn memory_only_reservations_have_no_brick() {
        let mut ledger = ReservationLedger::new();
        let id = ledger.reserve(None, 0, ByteSize::from_gib(4));
        assert_eq!(ledger.held_cores(BrickId(0)), 0);
        assert_eq!(ledger.held_memory(), ByteSize::from_gib(4));
        ledger.commit(id).unwrap();
        ledger
            .release_committed(None, 0, ByteSize::from_gib(4))
            .unwrap();
        assert_eq!(ledger.held_memory(), ByteSize::ZERO);
    }

    proptest! {
        #[test]
        fn held_memory_is_consistent(ops in proptest::collection::vec((1u64..16, 0u8..3), 1..40)) {
            let mut ledger = ReservationLedger::new();
            let mut open: Vec<ReservationId> = Vec::new();
            let mut committed: Vec<(ReservationId, u64)> = Vec::new();
            let mut expected_gib: i64 = 0;
            for (gib, action) in ops {
                match action {
                    0 => {
                        let id = ledger.reserve(None, 0, ByteSize::from_gib(gib));
                        open.push(id);
                        expected_gib += gib as i64;
                    }
                    1 if !open.is_empty() => {
                        let id = open.remove(0);
                        let r = ledger.commit(id).unwrap();
                        committed.push((id, r.memory.as_gib()));
                    }
                    _ if !open.is_empty() => {
                        let id = open.remove(0);
                        let r = ledger.rollback(id).unwrap();
                        expected_gib -= r.memory.as_gib() as i64;
                    }
                    _ => {}
                }
                prop_assert_eq!(ledger.held_memory().as_gib() as i64, expected_gib);
            }
        }
    }
}
