//! Orchestration of disaggregated resources (Section IV-C of the paper).
//!
//! "Orchestration of the disaggregated resources is performed by a software
//! component integrated with OpenStack, namely the SDM Controller (SDM-C).
//! The SDM-C runs as an autonomous service that primarily supports resource
//! reservation and dynamic reconfiguration within a rack, by interacting with
//! agents (SDM Agents) running on the OS of dCOMPUBRICKs, as well as with
//! configurable switches to program circuit switches at runtime."
//!
//! Its four roles, and where each is modelled:
//!
//! | Role | Module |
//! |------|--------|
//! | (a) receive VM / bare-metal allocation requests | [`requests`], [`sdm_controller`] |
//! | (b) safely inspect availability, make a power-conscious selection | [`placement`], [`sdm_controller`] |
//! | (c) safely reserve selected resources | [`reservation`] |
//! | (d) generate and push configurations to all involved devices | [`sdm_agent`], [`sdm_controller`] |
//!
//! [`power_mgmt`] implements the power-off of unused bricks that the TCO
//! study (Section VI) quantifies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel_index;
mod bucket;
pub mod capacity;
pub mod cluster;
pub mod error;
pub mod placement;
pub mod power_mgmt;
pub mod requests;
pub mod reservation;
pub mod scheduler;
pub mod sdm_agent;
pub mod sdm_controller;

pub use accel_index::{AccelIndex, AccelSlot};
pub use capacity::{CapacityIndex, CapacitySlot};
pub use cluster::{ClusterController, ClusterTimings, RackDigest, RackRoute};
pub use error::OrchestratorError;
pub use placement::{ComputeBrickView, PlacementPolicy};
pub use power_mgmt::PowerManager;
pub use requests::{OffloadRequest, ScaleUpDemand, VmAllocationRequest};
pub use reservation::{Reservation, ReservationId, ReservationLedger};
pub use scheduler::{Admission, FcfsScheduler, ScheduleOutcome};
pub use sdm_agent::{AttachOutcome, SdmAgent};
pub use sdm_controller::{
    MigrationOutcome, OffloadGrant, OffloadRelease, OffloadSession, OffloadSessionId, ScaleUpGrant,
    SdmController, SdmTimings,
};

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::accel_index::{AccelIndex, AccelSlot};
    pub use crate::capacity::{CapacityIndex, CapacitySlot};
    pub use crate::cluster::{ClusterController, ClusterTimings, RackDigest, RackRoute};
    pub use crate::error::OrchestratorError;
    pub use crate::placement::{ComputeBrickView, PlacementPolicy};
    pub use crate::power_mgmt::PowerManager;
    pub use crate::requests::{OffloadRequest, ScaleUpDemand, VmAllocationRequest};
    pub use crate::reservation::{Reservation, ReservationId, ReservationLedger};
    pub use crate::sdm_agent::{AttachOutcome, SdmAgent};
    pub use crate::sdm_controller::{
        MigrationOutcome, OffloadGrant, OffloadRelease, OffloadSession, OffloadSessionId,
        ScaleUpGrant, SdmController, SdmTimings,
    };
}
