//! Seeded failure injection.
//!
//! dReDBox's serviceability story — bricks can be pulled, replaced and
//! upgraded without taking the rack down — is only testable if components
//! actually fail mid-trace. This module provides the two deterministic
//! halves of that story:
//!
//! * [`FailureSchedule`] — a seeded, pre-generated list of
//!   [`PlannedFault`]s (what breaks, when, and how long the repair takes),
//!   drawn from a [`SimRng`] so the same seed always produces the same
//!   storm. The scenario layer delivers these through the sharded event
//!   engine's timestamped mailboxes, which keeps same-seed runs
//!   bit-identical in every sharding mode.
//! * [`FaultInjector`] — the live bookkeeping of which sites are currently
//!   down, when each went down, and the repair-time samples (MTTR) the
//!   availability report summarises.
//!
//! Sites are named in rack-relative ordinals ([`FaultSite`]); mapping an
//! ordinal onto a concrete brick, cabled port or switch belongs to the
//! layer that owns those identifiers.

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The component class a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A dCOMPUBRICK dies; its VMs must migrate or restart.
    ComputeBrick,
    /// A dMEMBRICK dies; segments on it are lost.
    MemoryBrick,
    /// A dACCELBRICK dies; live offload sessions on it are drained.
    AccelBrick,
    /// One cabled brick-to-switch fibre dies; circuits re-route.
    Link,
    /// The rack's optical circuit switch dies; the standby takes over.
    Switch,
}

impl FaultKind {
    /// Every kind, in schedule-generation order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::ComputeBrick,
        FaultKind::MemoryBrick,
        FaultKind::AccelBrick,
        FaultKind::Link,
        FaultKind::Switch,
    ];

    /// A short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::ComputeBrick => "compute-brick",
            FaultKind::MemoryBrick => "memory-brick",
            FaultKind::AccelBrick => "accel-brick",
            FaultKind::Link => "link",
            FaultKind::Switch => "switch",
        }
    }
}

/// One failable component, named in rack-relative ordinals: the
/// `component`-th site of `kind` in rack `rack` (for [`FaultKind::Switch`]
/// the ordinal is always 0 — one switch pair per rack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FaultSite {
    /// Component class.
    pub kind: FaultKind,
    /// Owning rack.
    pub rack: u32,
    /// Per-kind ordinal within the rack.
    pub component: u32,
}

/// One scheduled failure: the site, when it fails, and how long the field
/// engineer takes to swap it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedFault {
    /// When the site fails.
    pub at: SimTime,
    /// What fails.
    pub site: FaultSite,
    /// Repair lead time; the site comes back at `at + repair_after`.
    pub repair_after: SimDuration,
}

/// How many failable sites of each kind one rack exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SiteCounts {
    /// dCOMPUBRICKs per rack.
    pub compute: u32,
    /// dMEMBRICKs per rack.
    pub memory: u32,
    /// dACCELBRICKs per rack.
    pub accel: u32,
    /// Cabled brick-to-switch fibres per rack.
    pub links: u32,
    /// Optical circuit switches per rack (the failover unit).
    pub switches: u32,
}

impl SiteCounts {
    fn of(&self, kind: FaultKind) -> u32 {
        match kind {
            FaultKind::ComputeBrick => self.compute,
            FaultKind::MemoryBrick => self.memory,
            FaultKind::AccelBrick => self.accel,
            FaultKind::Link => self.links,
            FaultKind::Switch => self.switches,
        }
    }
}

/// Knobs of one seeded failure storm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailurePlan {
    /// Faults to draw per kind `[compute, memory, accel, link, switch]`.
    pub counts: [u32; 5],
    /// Faults strike uniformly inside `[storm_start, storm_start + storm_window]`.
    pub storm_start: SimTime,
    /// Width of the strike window.
    pub storm_window: SimDuration,
    /// Mean of the exponentially distributed repair lead time.
    pub mean_repair: SimDuration,
    /// Repair lead times are clamped below by this floor.
    pub min_repair: SimDuration,
}

impl FailurePlan {
    /// A storm sized for the scenario suite: a handful of faults of every
    /// kind striking in the middle of the trace, repaired within minutes.
    pub fn storm(storm_start: SimTime, storm_window: SimDuration) -> Self {
        FailurePlan {
            counts: [3, 2, 1, 2, 1],
            storm_start,
            storm_window,
            mean_repair: SimDuration::from_secs(120),
            min_repair: SimDuration::from_secs(10),
        }
    }
}

/// A seeded, deterministic list of [`PlannedFault`]s, sorted by
/// `(time, site)` so delivery order never depends on generation order.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FailureSchedule {
    faults: Vec<PlannedFault>,
}

impl FailureSchedule {
    /// Draws a schedule from `rng`. Every draw consumes the RNG in a fixed
    /// kind-major order, so the same seed yields the same storm regardless
    /// of which kinds end up with zero sites. Kinds with no sites (or a
    /// zero count) contribute no faults.
    pub fn generate(plan: &FailurePlan, racks: u32, sites: SiteCounts, rng: &mut SimRng) -> Self {
        let mut faults = Vec::new();
        if racks == 0 {
            return FailureSchedule { faults };
        }
        let window_ns = plan.storm_window.as_nanos().max(1);
        for (slot, kind) in FaultKind::ALL.into_iter().enumerate() {
            let population = sites.of(kind);
            for _ in 0..plan.counts[slot] {
                // Draw the full tuple even when the kind has no sites, so
                // adding an accelerator tray to a config never reshuffles
                // the faults drawn for the other kinds.
                let rack = rng.range(0..racks);
                let component = rng.range(0..population.max(1));
                let offset = rng.range(0..window_ns);
                let repair_secs = rng.exponential(plan.mean_repair.as_secs_f64());
                if population == 0 {
                    continue;
                }
                let repair_after =
                    SimDuration::from_nanos((repair_secs * 1e9) as u64).max(plan.min_repair);
                faults.push(PlannedFault {
                    at: plan.storm_start + SimDuration::from_nanos(offset),
                    site: FaultSite {
                        kind,
                        rack,
                        component,
                    },
                    repair_after,
                });
            }
        }
        faults.sort_unstable_by_key(|f| (f.at, f.site));
        FailureSchedule { faults }
    }

    /// The scheduled faults, ascending by `(time, site)`.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Live fault bookkeeping: which sites are down, since when, and the
/// repair-time (MTTR) samples collected so far.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Sites currently down and when each went down.
    down: BTreeMap<FaultSite, SimTime>,
    /// Faults that actually struck (a fault on an already-down site is
    /// absorbed and not counted).
    injected: u64,
    /// Repairs completed.
    repaired: u64,
    /// Completed repair durations, in seconds, in completion order.
    mttr_secs: Vec<f64>,
}

impl FaultInjector {
    /// Creates an injector with no live faults.
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Records `site` failing at `now`. Returns `false` (and absorbs the
    /// fault) if the site is already down.
    pub fn begin(&mut self, site: FaultSite, now: SimTime) -> bool {
        if self.down.contains_key(&site) {
            return false;
        }
        self.down.insert(site, now);
        self.injected += 1;
        true
    }

    /// Records `site` being repaired at `now`, returning how long it was
    /// down. Returns `None` (and records nothing) if the site is not down.
    pub fn end(&mut self, site: FaultSite, now: SimTime) -> Option<SimDuration> {
        let since = self.down.remove(&site)?;
        let outage = now.duration_since(since);
        self.repaired += 1;
        self.mttr_secs.push(outage.as_secs_f64());
        Some(outage)
    }

    /// Whether `site` is currently down.
    pub fn is_down(&self, site: FaultSite) -> bool {
        self.down.contains_key(&site)
    }

    /// Sites currently down, ascending.
    pub fn down_sites(&self) -> impl Iterator<Item = FaultSite> + '_ {
        self.down.keys().copied()
    }

    /// Number of sites currently down.
    pub fn down_count(&self) -> usize {
        self.down.len()
    }

    /// Faults that actually struck.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Repairs completed.
    pub fn repaired(&self) -> u64 {
        self.repaired
    }

    /// Completed repair durations in seconds, in completion order.
    pub fn mttr_samples(&self) -> &[f64] {
        &self.mttr_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites() -> SiteCounts {
        SiteCounts {
            compute: 4,
            memory: 4,
            accel: 2,
            links: 32,
            switches: 1,
        }
    }

    fn plan() -> FailurePlan {
        FailurePlan::storm(SimTime::from_millis(100), SimDuration::from_secs(2))
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let a = FailureSchedule::generate(&plan(), 2, sites(), &mut SimRng::seed(2018));
        let b = FailureSchedule::generate(&plan(), 2, sites(), &mut SimRng::seed(2018));
        let c = FailureSchedule::generate(&plan(), 2, sites(), &mut SimRng::seed(7));
        assert_eq!(a, b, "same seed, same storm");
        assert_ne!(a, c, "different seed, different storm");
        assert_eq!(a.len(), 9, "3+2+1+2+1 faults");
        // Sorted by (time, site) and inside the strike window.
        for pair in a.faults().windows(2) {
            assert!((pair[0].at, pair[0].site) <= (pair[1].at, pair[1].site));
        }
        for fault in a.faults() {
            assert!(fault.at >= plan().storm_start);
            assert!(fault.at <= plan().storm_start + plan().storm_window);
            assert!(fault.repair_after >= plan().min_repair);
            assert!(fault.site.rack < 2);
        }
    }

    #[test]
    fn absent_kinds_do_not_reshuffle_the_others() {
        // Removing every accelerator site must keep the other kinds' draws
        // identical — the RNG is consumed in fixed kind-major order.
        let with = FailureSchedule::generate(&plan(), 1, sites(), &mut SimRng::seed(9));
        let mut no_accel = sites();
        no_accel.accel = 0;
        let without = FailureSchedule::generate(&plan(), 1, no_accel, &mut SimRng::seed(9));
        let kept: Vec<PlannedFault> = with
            .faults()
            .iter()
            .copied()
            .filter(|f| f.site.kind != FaultKind::AccelBrick)
            .collect();
        assert_eq!(kept, without.faults());
    }

    #[test]
    fn injector_tracks_outages_and_mttr() {
        let mut injector = FaultInjector::new();
        let site = FaultSite {
            kind: FaultKind::ComputeBrick,
            rack: 0,
            component: 3,
        };
        assert!(injector.begin(site, SimTime::from_secs(1)));
        assert!(!injector.begin(site, SimTime::from_secs(2)), "already down");
        assert!(injector.is_down(site));
        assert_eq!(injector.down_count(), 1);
        assert_eq!(injector.injected(), 1);
        assert_eq!(
            injector.end(site, SimTime::from_secs(31)),
            Some(SimDuration::from_secs(30))
        );
        assert_eq!(injector.end(site, SimTime::from_secs(32)), None);
        assert_eq!(injector.repaired(), 1);
        assert_eq!(injector.mttr_samples(), &[30.0]);
        assert_eq!(injector.down_count(), 0);
    }
}
