//! Summary statistics used by the experiment harnesses.
//!
//! Figure 7 of the paper is a box plot of measured BER per optical channel;
//! Figure 10 reports per-VM average delays. [`Summary`], [`BoxPlot`] and
//! [`Histogram`] provide exactly the aggregations those harnesses print.

use serde::{Deserialize, Serialize};

/// Summary statistics (count, mean, std-dev, min/max, percentiles) of a set
/// of `f64` samples.
///
/// Sorted samples are stored run-length encoded (distinct value + cumulative
/// count per run), so summaries embedded in reports and snapshots stay small
/// even for ~100k-event traces whose latency draws collapse to a handful of
/// distinct values. Percentiles remain *exact*: the encoding loses nothing.
/// The `Debug` representation re-expands the runs, so pretty-printed output
/// is byte-identical to the previous `sorted: Vec<f64>` form (golden
/// snapshots depend on this).
///
/// ```
/// use dredbox_sim::stats::Summary;
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
    /// Distinct sorted sample values, one entry per run.
    run_values: Vec<f64>,
    /// Cumulative sample count at the end of each run; the last entry
    /// equals `count`.
    run_ends: Vec<usize>,
}

impl Summary {
    /// Builds a summary from `samples`. Returns `None` when `samples` is
    /// empty or contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        // Run-length encode; runs split on bit patterns so the expansion
        // reproduces the sorted sequence exactly (e.g. -0.0 vs 0.0).
        let mut run_values = Vec::new();
        let mut run_ends = Vec::new();
        for (i, &x) in sorted.iter().enumerate() {
            match run_values.last() {
                Some(&last) if f64::to_bits(last) == f64::to_bits(x) => {
                    *run_ends.last_mut().expect("runs in lockstep") = i + 1;
                }
                _ => {
                    run_values.push(x);
                    run_ends.push(i + 1);
                }
            }
        }
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            run_values,
            run_ends,
        })
    }

    /// The `idx`-th smallest sample (0-based), decoded from the runs.
    fn sorted_at(&self, idx: usize) -> f64 {
        debug_assert!(idx < self.count);
        let run = self.run_ends.partition_point(|&end| end <= idx);
        self.run_values[run]
    }

    /// Iterates the samples in ascending order, expanding the runs.
    pub fn iter_sorted(&self) -> impl Iterator<Item = f64> + '_ {
        self.run_values
            .iter()
            .zip(run_lengths(&self.run_ends))
            .flat_map(|(&value, len)| std::iter::repeat(value).take(len))
    }

    /// Number of distinct sample values retained by the encoding.
    pub fn distinct_values(&self) -> usize {
        self.run_values.len()
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Linear-interpolated percentile, `p` in `[0, 100]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.count == 1 {
            return self.run_values[0];
        }
        let rank = p / 100.0 * (self.count - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.sorted_at(lo) * (1.0 - frac) + self.sorted_at(hi) * frac
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Box-plot summary (min, Q1, median, Q3, max) of the samples.
    pub fn box_plot(&self) -> BoxPlot {
        BoxPlot {
            min: self.min,
            q1: self.percentile(25.0),
            median: self.median(),
            q3: self.percentile(75.0),
            max: self.max,
        }
    }
}

/// Per-run lengths recovered from the cumulative `run_ends` vector.
fn run_lengths(run_ends: &[usize]) -> impl Iterator<Item = usize> + '_ {
    run_ends.iter().scan(0usize, |prev, &end| {
        let len = end - *prev;
        *prev = end;
        Some(len)
    })
}

/// Prints the run-length-encoded samples expanded back into the flat sorted
/// list, matching the derived `Debug` of the former `sorted: Vec<f64>` field
/// byte for byte.
struct ExpandedSorted<'a>(&'a Summary);

impl std::fmt::Debug for ExpandedSorted<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.0.iter_sorted()).finish()
    }
}

impl std::fmt::Debug for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Field names and order mirror the pre-RLE derived output; golden
        // snapshots freeze this representation.
        f.debug_struct("Summary")
            .field("count", &self.count)
            .field("mean", &self.mean)
            .field("std_dev", &self.std_dev)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("sorted", &ExpandedSorted(self))
            .finish()
    }
}

/// Five-number box-plot summary, as plotted in Figure 7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxPlot {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

impl BoxPlot {
    /// Interquartile range (Q3 − Q1).
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl std::fmt::Display for BoxPlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min={:.3e} q1={:.3e} med={:.3e} q3={:.3e} max={:.3e}",
            self.min, self.q1, self.median, self.q3, self.max
        )
    }
}

/// A fixed-width histogram over `[lo, hi)`.
///
/// ```
/// use dredbox_sim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.record(1.0);
/// h.record(9.5);
/// h.record(100.0); // overflow bucket
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `buckets` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; buckets],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.buckets.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total number of recorded samples, including under/overflow.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bucket counts, in order of increasing value.
    pub fn counts(&self) -> &[u64] {
        &self.buckets
    }

    /// The `(low, high)` bounds of bucket `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn bucket_bounds(&self, idx: usize) -> (f64, f64) {
        assert!(idx < self.buckets.len(), "bucket index out of range");
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        (
            self.lo + width * idx as f64,
            self.lo + width * (idx + 1) as f64,
        )
    }
}

/// Incremental mean/variance accumulator (Welford's algorithm), for places
/// where keeping every sample would be wasteful.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation; 0 when fewer than two observations.
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::from_samples(&[]).is_none());
        assert!(Summary::from_samples(&[1.0, f64::NAN]).is_none());
        assert!(Summary::from_samples(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.mean(), 5.0);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.median(), 4.5);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_samples(&[10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(100.0), 40.0);
        assert_eq!(s.percentile(50.0), 25.0);
        assert!((s.percentile(25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::from_samples(&[3.5]).unwrap();
        assert_eq!(s.percentile(10.0), 3.5);
        assert_eq!(s.median(), 3.5);
        assert_eq!(s.box_plot().iqr(), 0.0);
    }

    #[test]
    fn box_plot_ordering() {
        let s = Summary::from_samples(&[5.0, 1.0, 9.0, 3.0, 7.0]).unwrap();
        let b = s.box_plot();
        assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 9.0);
        assert!(!b.to_string().is_empty());
    }

    #[test]
    fn rle_compacts_repeated_samples_without_losing_percentiles() {
        // Four distinct values over 12 samples: the encoding keeps 4 runs.
        let samples = [
            64.0, 256.0, 64.0, 1024.0, 64.0, 256.0, 4096.0, 64.0, 1024.0, 64.0, 256.0, 4096.0,
        ];
        let s = Summary::from_samples(&samples).unwrap();
        assert_eq!(s.count(), 12);
        assert_eq!(s.distinct_values(), 4);
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(s.iter_sorted().collect::<Vec<_>>(), sorted);
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let rank = p / 100.0 * (sorted.len() - 1) as f64;
            let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
            let frac = rank - lo as f64;
            let naive = sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
            assert_eq!(s.percentile(p), naive, "p{p}");
        }
    }

    #[test]
    fn debug_output_matches_the_flat_sorted_representation() {
        let s = Summary::from_samples(&[2.0, 1.0, 2.0]).unwrap();
        let expected_pretty = "Summary {\n    count: 3,\n    mean: 1.6666666666666667,\n    \
             std_dev: 0.4714045207910317,\n    min: 1.0,\n    max: 2.0,\n    \
             sorted: [\n        1.0,\n        2.0,\n        2.0,\n    ],\n}";
        assert_eq!(format!("{s:#?}"), expected_pretty);
        let expected_flat = "Summary { count: 3, mean: 1.6666666666666667, \
             std_dev: 0.4714045207910317, min: 1.0, max: 2.0, sorted: [1.0, 2.0, 2.0] }";
        assert_eq!(format!("{s:?}"), expected_flat);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 100.0, 10);
        for i in 0..100 {
            h.record(i as f64);
        }
        h.record(-1.0);
        h.record(100.0);
        assert_eq!(h.total(), 102);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert!(h.counts().iter().all(|&c| c == 10));
        assert_eq!(h.bucket_bounds(0), (0.0, 10.0));
        assert_eq!(h.bucket_bounds(9), (90.0, 100.0));
    }

    #[test]
    #[should_panic]
    fn histogram_rejects_empty_range() {
        let _ = Histogram::new(1.0, 1.0, 4);
    }

    #[test]
    fn accumulator_matches_summary() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut acc = Accumulator::new();
        for &x in &data {
            acc.record(x);
        }
        let s = Summary::from_samples(&data).unwrap();
        assert_eq!(acc.count() as usize, s.count());
        assert!((acc.mean() - s.mean()).abs() < 1e-12);
        assert!((acc.std_dev() - s.std_dev()).abs() < 1e-12);
        assert_eq!(acc.min(), Some(1.0));
        assert_eq!(acc.max(), Some(9.0));
    }

    #[test]
    fn empty_accumulator() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.std_dev(), 0.0);
        assert_eq!(acc.min(), None);
        assert_eq!(acc.max(), None);
    }

    proptest! {
        #[test]
        fn percentile_is_monotone(samples in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
            let s = Summary::from_samples(&samples).unwrap();
            let mut last = f64::NEG_INFINITY;
            for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0] {
                let v = s.percentile(p);
                prop_assert!(v >= last - 1e-9);
                last = v;
            }
        }

        #[test]
        fn mean_is_bounded_by_min_max(samples in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let s = Summary::from_samples(&samples).unwrap();
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }

        #[test]
        fn rle_expansion_reproduces_the_sorted_samples(
            samples in proptest::collection::vec(-1e6f64..1e6, 1..100),
        ) {
            let s = Summary::from_samples(&samples).unwrap();
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert_eq!(s.iter_sorted().collect::<Vec<_>>(), sorted);
        }

        #[test]
        fn histogram_conserves_samples(samples in proptest::collection::vec(-50.0f64..150.0, 0..200)) {
            let mut h = Histogram::new(0.0, 100.0, 7);
            for &x in &samples {
                h.record(x);
            }
            prop_assert_eq!(h.total() as usize, samples.len());
        }
    }
}
