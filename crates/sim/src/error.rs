//! Error type for the simulation substrate.

use std::fmt;

/// Errors produced by the simulation substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An event was scheduled before the current simulated time.
    ScheduleInPast {
        /// Current clock value in nanoseconds.
        now_nanos: u64,
        /// Requested event time in nanoseconds.
        requested_nanos: u64,
    },
    /// A statistic was requested over an empty sample set.
    EmptySamples,
    /// A quantity was outside its valid range.
    InvalidQuantity {
        /// Description of the offending quantity.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ScheduleInPast {
                now_nanos,
                requested_nanos,
            } => write!(
                f,
                "event scheduled in the past (now {now_nanos} ns, requested {requested_nanos} ns)"
            ),
            SimError::EmptySamples => write!(f, "statistic requested over an empty sample set"),
            SimError::InvalidQuantity { what } => write!(f, "invalid quantity: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = SimError::ScheduleInPast {
            now_nanos: 10,
            requested_nanos: 5,
        };
        assert!(e.to_string().contains("10 ns"));
        assert!(e.to_string().contains("5 ns"));
        assert_eq!(
            SimError::EmptySamples.to_string(),
            "statistic requested over an empty sample set"
        );
        let q = SimError::InvalidQuantity {
            what: "negative bandwidth".into(),
        };
        assert!(q.to_string().contains("negative bandwidth"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
