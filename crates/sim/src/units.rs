//! Strongly-typed quantities shared by the hardware models.
//!
//! The dReDBox evaluation mixes several unit families: memory capacities
//! (GiB), link bandwidths (10 Gb/s transceivers), optical power (dBm/mW, the
//! MBO launches −3.7 dBm per channel) and electrical power (the optical switch
//! draws ~100 mW/port). Newtypes keep them from being confused.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A memory or transfer size in bytes.
///
/// ```
/// use dredbox_sim::units::ByteSize;
/// let total = ByteSize::from_gib(2) + ByteSize::from_mib(512);
/// assert_eq!(total.as_mib(), 2_560);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// From raw bytes.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// From kibibytes.
    pub const fn from_kib(kib: u64) -> Self {
        ByteSize(kib << 10)
    }

    /// From mebibytes.
    pub const fn from_mib(mib: u64) -> Self {
        ByteSize(mib << 20)
    }

    /// From gibibytes.
    pub const fn from_gib(gib: u64) -> Self {
        ByteSize(gib << 30)
    }

    /// Raw byte count.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Whole mebibytes (truncating).
    pub const fn as_mib(self) -> u64 {
        self.0 >> 20
    }

    /// Whole gibibytes (truncating).
    pub const fn as_gib(self) -> u64 {
        self.0 >> 30
    }

    /// Gibibytes as a float.
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1u64 << 30) as f64
    }

    /// Whether this is zero bytes.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` if `rhs > self`.
    pub fn checked_sub(self, rhs: ByteSize) -> Option<ByteSize> {
        self.0.checked_sub(rhs.0).map(ByteSize)
    }

    /// Integer multiple of this size.
    pub fn saturating_mul(self, factor: u64) -> ByteSize {
        ByteSize(self.0.saturating_mul(factor))
    }

    /// The smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// The larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }

    /// Number of `chunk`-sized pieces needed to cover this size, rounding up.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn div_ceil_by(self, chunk: ByteSize) -> u64 {
        assert!(!chunk.is_zero(), "chunk size must be non-zero");
        self.0.div_ceil(chunk.0)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl SubAssign for ByteSize {
    fn sub_assign(&mut self, rhs: ByteSize) {
        self.0 -= rhs.0;
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> Self {
        iter.fold(ByteSize::ZERO, |acc, b| acc + b)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2} GiB", self.as_gib_f64())
        } else if b >= 1 << 20 {
            write!(f, "{:.2} MiB", b as f64 / (1u64 << 20) as f64)
        } else if b >= 1 << 10 {
            write!(f, "{:.2} KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b} B")
        }
    }
}

/// A link bandwidth, stored in bits per second.
///
/// ```
/// use dredbox_sim::units::{Bandwidth, ByteSize};
/// let link = Bandwidth::from_gbps(10.0);
/// let t = link.transfer_time(ByteSize::from_bytes(125)); // 1000 bits
/// assert_eq!(t.as_nanos(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// From bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bps` is not finite or is negative.
    pub fn from_bps(bps: f64) -> Self {
        assert!(
            bps.is_finite() && bps >= 0.0,
            "bandwidth must be finite and non-negative"
        );
        Bandwidth(bps)
    }

    /// From gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bps(gbps * 1e9)
    }

    /// Bits per second.
    pub fn as_bps(self) -> f64 {
        self.0
    }

    /// Gigabits per second.
    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Serialization time of `size` at this rate.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is zero.
    pub fn transfer_time(self, size: ByteSize) -> SimDuration {
        assert!(self.0 > 0.0, "cannot transfer over a zero-bandwidth link");
        let bits = size.as_bytes() as f64 * 8.0;
        SimDuration::from_nanos_f64(bits / self.0 * 1e9)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} Gb/s", self.as_gbps())
    }
}

/// Optical power in dBm (decibels referenced to 1 mW).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct DecibelMilliwatts(f64);

impl DecibelMilliwatts {
    /// From a dBm value.
    ///
    /// # Panics
    ///
    /// Panics if `dbm` is not finite.
    pub fn new(dbm: f64) -> Self {
        assert!(dbm.is_finite(), "optical power must be finite");
        DecibelMilliwatts(dbm)
    }

    /// The dBm value.
    pub fn as_dbm(self) -> f64 {
        self.0
    }

    /// Converts to linear milliwatts.
    pub fn to_milliwatts(self) -> Milliwatts {
        Milliwatts(10f64.powf(self.0 / 10.0))
    }

    /// Attenuates by `loss_db` decibels (insertion loss of a switch hop,
    /// connector, or fibre span).
    ///
    /// # Panics
    ///
    /// Panics if `loss_db` is negative or not finite.
    pub fn attenuate(self, loss_db: f64) -> DecibelMilliwatts {
        assert!(
            loss_db.is_finite() && loss_db >= 0.0,
            "loss must be finite and non-negative"
        );
        DecibelMilliwatts(self.0 - loss_db)
    }
}

impl fmt::Display for DecibelMilliwatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}

/// Optical power in linear milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Milliwatts(f64);

impl Milliwatts {
    /// From a milliwatt value.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is negative or not finite.
    pub fn new(mw: f64) -> Self {
        assert!(
            mw.is_finite() && mw >= 0.0,
            "power must be finite and non-negative"
        );
        Milliwatts(mw)
    }

    /// The milliwatt value.
    pub fn as_mw(self) -> f64 {
        self.0
    }

    /// Converts to dBm. Returns negative infinity is not possible: zero power
    /// is clamped to a very small positive value first.
    pub fn to_dbm(self) -> DecibelMilliwatts {
        let mw = self.0.max(1e-12);
        DecibelMilliwatts(10.0 * mw.log10())
    }
}

impl fmt::Display for Milliwatts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} mW", self.0)
    }
}

/// Electrical power draw in watts, used by the TCO study's energy model.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// From a watt value.
    ///
    /// # Panics
    ///
    /// Panics if `w` is negative or not finite.
    pub fn new(w: f64) -> Self {
        assert!(
            w.is_finite() && w >= 0.0,
            "power must be finite and non-negative"
        );
        Watts(w)
    }

    /// The watt value.
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// Scales by a dimensionless factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scale(self, factor: f64) -> Watts {
        Watts::new(self.0 * factor)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Self {
        iter.fold(Watts::ZERO, |acc, w| acc + w)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} W", self.0)
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_newtype!(ByteSize(u64));
dredbox_snap::snap_newtype!(Bandwidth(f64));
dredbox_snap::snap_newtype!(DecibelMilliwatts(f64));
dredbox_snap::snap_newtype!(Milliwatts(f64));
dredbox_snap::snap_newtype!(Watts(f64));

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn byte_size_constructors() {
        assert_eq!(ByteSize::from_kib(1).as_bytes(), 1024);
        assert_eq!(ByteSize::from_mib(1).as_bytes(), 1 << 20);
        assert_eq!(ByteSize::from_gib(1).as_mib(), 1024);
        assert_eq!(ByteSize::from_gib(3).as_gib(), 3);
    }

    #[test]
    fn byte_size_arithmetic() {
        let a = ByteSize::from_mib(100);
        let b = ByteSize::from_mib(30);
        assert_eq!((a - b).as_mib(), 70);
        assert_eq!(a.saturating_sub(ByteSize::from_gib(1)), ByteSize::ZERO);
        assert_eq!(a.checked_sub(ByteSize::from_gib(1)), None);
        assert_eq!(b.checked_sub(ByteSize::from_mib(30)), Some(ByteSize::ZERO));
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        let total: ByteSize = [a, b].into_iter().sum();
        assert_eq!(total.as_mib(), 130);
    }

    #[test]
    fn div_ceil_counts_chunks() {
        let size = ByteSize::from_gib(3);
        let section = ByteSize::from_gib(1);
        assert_eq!(size.div_ceil_by(section), 3);
        assert_eq!((size + ByteSize::from_bytes(1)).div_ceil_by(section), 4);
    }

    #[test]
    fn byte_size_display() {
        assert_eq!(ByteSize::from_bytes(12).to_string(), "12 B");
        assert_eq!(ByteSize::from_kib(2).to_string(), "2.00 KiB");
        assert_eq!(ByteSize::from_mib(3).to_string(), "3.00 MiB");
        assert_eq!(ByteSize::from_gib(4).to_string(), "4.00 GiB");
    }

    #[test]
    fn bandwidth_transfer_time() {
        let bw = Bandwidth::from_gbps(10.0);
        assert_eq!(bw.as_gbps(), 10.0);
        // 64-byte memory transaction payload = 512 bits -> 51.2 ns at 10 Gb/s.
        let t = bw.transfer_time(ByteSize::from_bytes(64));
        assert_eq!(t.as_nanos(), 51);
        assert_eq!(bw.to_string(), "10.00 Gb/s");
    }

    #[test]
    fn dbm_mw_roundtrip() {
        let p = DecibelMilliwatts::new(-3.7);
        let mw = p.to_milliwatts();
        assert!((mw.as_mw() - 0.4266).abs() < 1e-3);
        let back = mw.to_dbm();
        assert!((back.as_dbm() - -3.7).abs() < 1e-9);
    }

    #[test]
    fn attenuation_subtracts_decibels() {
        let launch = DecibelMilliwatts::new(-3.7);
        // Eight hops through the Polatis switch at ~1 dB each.
        let received = launch.attenuate(8.0);
        assert!((received.as_dbm() - -11.7).abs() < 1e-9);
        assert!(received.to_milliwatts().as_mw() < launch.to_milliwatts().as_mw());
    }

    #[test]
    fn watts_sum_and_scale() {
        let total: Watts = [Watts::new(10.0), Watts::new(5.5)].into_iter().sum();
        assert!((total.as_watts() - 15.5).abs() < 1e-12);
        assert!((total.scale(2.0).as_watts() - 31.0).abs() < 1e-12);
        assert_eq!(Watts::new(3.0).to_string(), "3.0 W");
    }

    #[test]
    #[should_panic]
    fn negative_watts_rejected() {
        let _ = Watts::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn negative_attenuation_rejected() {
        let _ = DecibelMilliwatts::new(0.0).attenuate(-1.0);
    }

    proptest! {
        #[test]
        fn dbm_mw_roundtrip_prop(dbm in -60.0f64..20.0) {
            let p = DecibelMilliwatts::new(dbm);
            let rt = p.to_milliwatts().to_dbm();
            prop_assert!((rt.as_dbm() - dbm).abs() < 1e-6);
        }

        #[test]
        fn transfer_time_scales_linearly(bytes in 1u64..1_000_000) {
            let bw = Bandwidth::from_gbps(10.0);
            let one = bw.transfer_time(ByteSize::from_bytes(bytes));
            let two = bw.transfer_time(ByteSize::from_bytes(bytes * 2));
            // Allow 1 ns of rounding slack.
            prop_assert!((two.as_nanos() as i64 - 2 * one.as_nanos() as i64).abs() <= 1);
        }

        #[test]
        fn byte_size_add_sub_roundtrip(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
            let x = ByteSize::from_bytes(a);
            let y = ByteSize::from_bytes(b);
            prop_assert_eq!((x + y) - y, x);
        }
    }
}
