//! Shard-partitioned discrete-event engine with a deterministic
//! cross-shard mailbox.
//!
//! A [`ShardedEngine`] runs one event calendar per *shard* — a rack in the
//! dReDBox scenarios; the whole system is shard 0 for everything that does
//! not opt into partitioning. The engine stays single-threaded: sharding
//! here is a *data-structure* boundary (per-shard heaps, per-shard control
//! planes) that a future threaded runner can pick up without changing a
//! single report bit.
//!
//! # Ordering contract
//!
//! The engine extends the [`EventQueue`](crate::event::EventQueue)
//! contract of (time, seq) FIFO tie-breaking to (time, shard, seq):
//!
//! 1. **Within a shard**, locally scheduled events fire in (time, local
//!    seq) order — exactly the single-engine contract.
//! 2. **Across shards**, the next event globally is the one with the
//!    earliest time; at equal times the lowest shard id goes first.
//! 3. **Cross-shard sends** land in the destination shard's mailbox, a
//!    min-heap ordered by (arrival time, source shard, send seq). At equal
//!    arrival times a shard fires its *local* events before its mailbox
//!    arrivals, and mailbox arrivals fire in (source shard, send seq)
//!    order — independent of the wall-clock order the sends were issued
//!    in. This is what keeps a sharded replay bit-deterministic: the merge
//!    is a pure function of timestamps and ids, never of execution
//!    interleaving.
//!
//! With a single shard and only local scheduling, the run is
//! *bit-identical* to [`Engine`](crate::engine::Engine) on the same trace:
//! same pops, same clock, same [`RunOutcome`].
//!
//! ```
//! use dredbox_sim::shard::{ShardContext, ShardId, ShardedEngine, ShardedProcess};
//! use dredbox_sim::engine::RunOutcome;
//! use dredbox_sim::time::{SimDuration, SimTime};
//!
//! /// A token bounces between two racks until it has hopped 6 times.
//! struct PingPong { hops: u32 }
//! impl ShardedProcess for PingPong {
//!     type Event = u32;
//!     fn handle(&mut self, shard: ShardId, now: SimTime, hop: u32,
//!               ctx: &mut ShardContext<'_, u32>) {
//!         self.hops = hop;
//!         if hop < 6 {
//!             let to = ShardId((shard.0 + 1) % 2);
//!             ctx.send(to, now + SimDuration::from_micros(1), hop + 1);
//!         }
//!     }
//! }
//!
//! let mut engine = ShardedEngine::new(2);
//! engine.schedule(ShardId(0), SimTime::ZERO, 1);
//! let mut world = PingPong { hops: 0 };
//! assert_eq!(engine.run(&mut world), RunOutcome::Drained);
//! assert_eq!(world.hops, 6);
//! assert_eq!(engine.processed(), 6);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::engine::RunOutcome;
use crate::event::EventQueue;
use crate::time::SimTime;

/// Sentinel in the flat next-event cache for a shard with nothing pending.
/// An event genuinely scheduled at this time still runs — the scan falls
/// back to peeking the heaps when every slot reads the sentinel.
const IDLE: SimTime = SimTime::from_nanos(u64::MAX);

pub use crate::parallel::{ParallelWorld, SerialContext, WorkerContext, WorldWorker};

/// Identifies one shard (one per-rack event domain) of a [`ShardedEngine`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct ShardId(pub u32);

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// A cross-shard event waiting in a destination mailbox.
#[derive(Debug, Clone)]
pub(crate) struct MailEntry<E> {
    pub(crate) at: SimTime,
    pub(crate) from: ShardId,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> MailEntry<E> {
    /// Packs (arrival time, source shard, send seq) into one integer so
    /// the merge comparison is branchless: time in the high 64 bits, then
    /// 16 bits of source shard, then the low 48 bits of the send seq.
    /// [`ShardedEngine::new`] caps shards at 2^16 and a 48-bit per-source
    /// send count is beyond any feasible run, so the packing is lossless
    /// in practice; both bounds are debug-asserted at the send site.
    fn merge_key(&self) -> u128 {
        (u128::from(self.at.as_nanos()) << 64)
            | (u128::from(self.from.0) << 48)
            | u128::from(self.seq & ((1 << 48) - 1))
    }
}

impl<E> PartialEq for MailEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.merge_key() == other.merge_key()
    }
}
impl<E> Eq for MailEntry<E> {}

impl<E> PartialOrd for MailEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for MailEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted into the (time, source shard, send seq) merge
        // order of the module contract.
        other.merge_key().cmp(&self.merge_key())
    }
}

/// A process partitioned across shards: reacts to events of type `E`
/// delivered on a given shard, scheduling follow-ups through the
/// [`ShardContext`].
pub trait ShardedProcess {
    /// The event type handled by this process.
    type Event;

    /// Handles `event` firing on `shard` at `now`. Local follow-ups and
    /// cross-shard sends go through `ctx`; scheduling in the past is a
    /// logic error and panics inside [`ShardedEngine::run`].
    fn handle(
        &mut self,
        shard: ShardId,
        now: SimTime,
        event: Self::Event,
        ctx: &mut ShardContext<'_, Self::Event>,
    );
}

/// Scheduling surface handed to [`ShardedProcess::handle`]: the firing
/// shard's own calendar plus the mailboxes of every other shard.
pub struct ShardContext<'a, E> {
    shard: ShardId,
    now: SimTime,
    local: &'a mut EventQueue<E>,
    mailboxes: &'a mut [BinaryHeap<MailEntry<E>>],
    send_seq: &'a mut u64,
    /// The engine's flat next-event cache: a send lowers the destination
    /// slot in place, so the engine never re-peeks untouched shards.
    next_times: &'a mut [SimTime],
    next_srcs: &'a mut [Source],
    /// Whether the handler sent to another shard's mailbox; a send can
    /// change who wins the next global pop, so it disables the engine's
    /// same-shard continuation fast path for this event.
    sent: bool,
}

impl<E> ShardContext<'_, E> {
    /// The shard the current event fired on.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` on the current shard's own calendar at absolute
    /// time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        self.local.schedule(at, event);
    }

    /// Sends `event` to shard `to`, arriving at absolute time `at`. A send
    /// to the current shard is a plain local [`ShardContext::schedule`];
    /// anything else goes through `to`'s mailbox and fires in
    /// (time, source shard, send seq) order.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock or `to` is not a
    /// shard of this engine.
    pub fn send(&mut self, to: ShardId, at: SimTime, event: E) {
        if to == self.shard {
            self.schedule(at, event);
            return;
        }
        assert!(at >= self.now, "cannot send an event into the past");
        let seq = *self.send_seq;
        *self.send_seq += 1;
        debug_assert!(
            seq < (1 << 48),
            "per-source send seq overflows the merge key"
        );
        self.mailboxes
            .get_mut(to.0 as usize)
            .unwrap_or_else(|| panic!("{to} is not a shard of this engine"))
            .push(MailEntry {
                at,
                from: self.shard,
                seq,
                event,
            });
        // A strictly earlier arrival takes over the destination's cached
        // next-event slot; at equal times the existing slot wins (a local
        // event outranks mail, and an older mail entry outranks a newer).
        if at < self.next_times[to.0 as usize] {
            self.next_times[to.0 as usize] = at;
            self.next_srcs[to.0 as usize] = Source::Mailbox;
        }
        self.sent = true;
    }
}

/// Where a shard's next event comes from: its own calendar or its mailbox.
/// Local sorts first so that, at equal times, locally scheduled events
/// fire before cross-shard arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Source {
    Local,
    Mailbox,
}

/// A serial event: executes at an epoch barrier of
/// [`ShardedEngine::run_threaded`] with exclusive access to the whole
/// world, ordered by (time, shard, seq) against its peers.
#[derive(Debug, Clone)]
pub(crate) struct SerialEntry<E> {
    pub(crate) at: SimTime,
    pub(crate) shard: ShardId,
    pub(crate) seq: u64,
    pub(crate) event: E,
}

impl<E> PartialEq for SerialEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.shard == other.shard && self.seq == other.seq
    }
}
impl<E> Eq for SerialEntry<E> {}

impl<E> PartialOrd for SerialEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for SerialEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inverted into (time, shard, insertion seq) order.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.shard.cmp(&self.shard))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Discrete-event engine with one calendar per shard and deterministic
/// cross-shard mailboxes. See the module docs for the ordering contract;
/// run semantics (horizon, event budget, outcomes) mirror
/// [`Engine`](crate::engine::Engine).
#[derive(Debug)]
pub struct ShardedEngine<E> {
    pub(crate) now: SimTime,
    pub(crate) queues: Vec<EventQueue<E>>,
    pub(crate) mailboxes: Vec<BinaryHeap<MailEntry<E>>>,
    /// One send counter per *source* shard. The mailbox merge key is
    /// (arrival time, source shard, send seq): entries that tie on the
    /// first two components necessarily share a source, and a per-source
    /// counter is monotone in that source's send order, so the merge is
    /// bit-identical to the former global counter — and, unlike a global
    /// counter, each worker thread owns its own.
    pub(crate) send_seqs: Vec<u64>,
    /// Cached time of each shard's next event, [`IDLE`] when the shard
    /// has nothing pending. Kept in lockstep with the queues and
    /// mailboxes so the per-pop global argmin is a branch-free min scan
    /// of a flat time vector instead of two heap peeks per shard.
    next_times: Vec<SimTime>,
    /// Source of each cached next time; meaningful only where the
    /// matching [`ShardedEngine::next_times`] slot is not [`IDLE`].
    next_srcs: Vec<Source>,
    /// Barrier-executed events for [`ShardedEngine::run_threaded`],
    /// ordered (time, shard, seq) across the whole engine.
    pub(crate) serial: BinaryHeap<SerialEntry<E>>,
    pub(crate) serial_seq: u64,
    pub(crate) horizon: Option<SimTime>,
    pub(crate) max_events: Option<u64>,
    pub(crate) processed: u64,
}

impl<E> ShardedEngine<E> {
    /// Creates an engine with `shards` event domains, the clock at
    /// [`SimTime::ZERO`] and no limits.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a sharded engine needs at least one shard");
        assert!(
            shards <= 1 << 16,
            "the mailbox merge key packs the source shard into 16 bits"
        );
        ShardedEngine {
            now: SimTime::ZERO,
            queues: (0..shards).map(|_| EventQueue::new()).collect(),
            mailboxes: (0..shards).map(|_| BinaryHeap::new()).collect(),
            send_seqs: vec![0; shards],
            next_times: vec![IDLE; shards],
            next_srcs: vec![Source::Local; shards],
            serial: BinaryHeap::new(),
            serial_seq: 0,
            horizon: None,
            max_events: None,
            processed: 0,
        }
    }

    /// Stops the run once the clock would advance past `horizon`.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Stops the run after `max_events` events have been processed.
    pub fn with_event_budget(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.queues.len()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far, across all shards.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events across all calendars, mailboxes and the
    /// serial barrier queue.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(EventQueue::len).sum::<usize>()
            + self.mailboxes.iter().map(BinaryHeap::len).sum::<usize>()
            + self.serial.len()
    }

    /// Schedules `event` on `shard`'s calendar at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock or `shard` is out
    /// of range.
    pub fn schedule(&mut self, shard: ShardId, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        self.queues
            .get_mut(shard.0 as usize)
            .unwrap_or_else(|| panic!("{shard} is not a shard of this engine"))
            .schedule(at, event);
        self.refresh_next(shard.0 as usize);
    }

    /// Schedules a *serial* event at absolute time `at`, attributed to
    /// `shard` for (time, shard, seq) ordering. Serial events execute at
    /// the epoch barriers of [`ShardedEngine::run_threaded`] with
    /// exclusive access to the whole world; the plain [`ShardedEngine::run`]
    /// loop refuses to start while any are pending.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock or `shard` is out
    /// of range.
    pub fn schedule_serial(&mut self, shard: ShardId, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        assert!(
            (shard.0 as usize) < self.queues.len(),
            "{shard} is not a shard of this engine"
        );
        let seq = self.serial_seq;
        self.serial_seq += 1;
        self.serial.push(SerialEntry {
            at,
            shard,
            seq,
            event,
        });
    }

    /// Recomputes the cached next-event slot of `shard` from its heaps.
    pub(crate) fn refresh_next(&mut self, shard: usize) {
        let local = self.queues[shard].peek_time();
        let mail = self.mailboxes[shard].peek().map(|e| e.at);
        let (t, src) = match (local, mail) {
            (None, None) => (IDLE, Source::Local),
            (Some(t), None) => (t, Source::Local),
            (None, Some(t)) => (t, Source::Mailbox),
            (Some(l), Some(m)) => {
                // At equal times the local calendar wins over the mailbox.
                if m < l {
                    (m, Source::Mailbox)
                } else {
                    (l, Source::Local)
                }
            }
        };
        self.next_times[shard] = t;
        self.next_srcs[shard] = src;
    }

    /// Rebuilds every cached next-event slot (used after bulk surgery on
    /// the queues, e.g. when `run_threaded` reassembles its lanes).
    pub(crate) fn rebuild_next_cache(&mut self) {
        for shard in 0..self.queues.len() {
            self.refresh_next(shard);
        }
    }

    /// The globally next event: earliest time, ties to the lowest shard.
    /// A branch-free min scan of the flat time cache — no heap peeks.
    fn global_next(&self) -> Option<(SimTime, usize, Source)> {
        let mut best_t = IDLE;
        let mut best_s = usize::MAX;
        for (shard, &t) in self.next_times.iter().enumerate() {
            // Strict `<` keeps the lowest shard id on equal times,
            // because shards are visited in ascending order.
            if t < best_t {
                best_t = t;
                best_s = shard;
            }
        }
        if best_s == usize::MAX {
            // Every slot reads the sentinel: the engine is drained —
            // unless an event is genuinely scheduled at the sentinel
            // time itself, which only a direct heap peek can tell.
            return self.global_next_slow();
        }
        Some((best_t, best_s, self.next_srcs[best_s]))
    }

    /// Sentinel-collision fallback for [`ShardedEngine::global_next`]:
    /// peeks the heaps directly to find an event scheduled at [`IDLE`].
    #[cold]
    fn global_next_slow(&self) -> Option<(SimTime, usize, Source)> {
        let mut best: Option<(SimTime, usize, Source)> = None;
        for shard in 0..self.queues.len() {
            let local = self.queues[shard].peek_time();
            let mail = self.mailboxes[shard].peek().map(|e| e.at);
            let slot = match (local, mail) {
                (None, None) => None,
                (Some(t), None) => Some((t, Source::Local)),
                (None, Some(t)) => Some((t, Source::Mailbox)),
                (Some(l), Some(m)) => {
                    if m < l {
                        Some((m, Source::Mailbox))
                    } else {
                        Some((l, Source::Local))
                    }
                }
            };
            if let Some((t, src)) = slot {
                let earlier = match best {
                    None => true,
                    Some((bt, _, _)) => t < bt,
                };
                if earlier {
                    best = Some((t, shard, src));
                }
            }
        }
        best
    }

    /// Runs the simulation single-threaded until every calendar and
    /// mailbox drains or a limit is hit. Semantics match
    /// [`Engine::run`](crate::engine::Engine::run): the budget is checked
    /// before each pop and the horizon against the next event's time.
    ///
    /// # Panics
    ///
    /// Panics if serial events are pending — those have barrier semantics
    /// only [`ShardedEngine::run_threaded`] implements.
    pub fn run<P: ShardedProcess<Event = E>>(&mut self, world: &mut P) -> RunOutcome {
        assert!(
            self.serial.is_empty(),
            "serial events require run_threaded; the plain run loop has no barriers"
        );
        // Same-shard continuation: after firing shard `s` at time `t` with no
        // cross-shard sends, if `s`'s refreshed slot still reads `t` then `s`
        // stays the global winner — it held the lowest id among the time-`t`
        // slots and no other slot moved — so the min scan can be skipped.
        let mut hint: Option<usize> = None;
        loop {
            if let Some(max) = self.max_events {
                if self.processed >= max {
                    return RunOutcome::BudgetExhausted;
                }
            }
            let (next_time, shard, source) = match hint.take() {
                Some(s) => (self.next_times[s], s, self.next_srcs[s]),
                None => match self.global_next() {
                    Some(next) => next,
                    None => return RunOutcome::Drained,
                },
            };
            if let Some(h) = self.horizon {
                if next_time > h {
                    return RunOutcome::HorizonReached;
                }
            }
            let (at, event) = match source {
                Source::Local => self.queues[shard].pop().expect("peeked event must exist"),
                Source::Mailbox => {
                    let entry = self.mailboxes[shard].pop().expect("peeked mail must exist");
                    (entry.at, entry.event)
                }
            };
            debug_assert!(at >= self.now, "shard produced a time in the past");
            self.now = at;
            self.processed += 1;
            let mut ctx = ShardContext {
                shard: ShardId(shard as u32),
                now: at,
                local: &mut self.queues[shard],
                mailboxes: &mut self.mailboxes,
                send_seq: &mut self.send_seqs[shard],
                next_times: &mut self.next_times,
                next_srcs: &mut self.next_srcs,
                sent: false,
            };
            world.handle(ShardId(shard as u32), at, event, &mut ctx);
            let sent = ctx.sent;
            // Sends already lowered their destinations' cached slots in
            // place; only the fired shard's own slot needs a re-peek.
            self.refresh_next(shard);
            if !sent && at < IDLE && self.next_times[shard] == at {
                hint = Some(shard);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Process};
    use crate::time::SimDuration;

    /// Mirrors the single-engine `Pinger`, recording the full pop trace.
    struct Tracer {
        trace: Vec<(SimTime, u32, u32)>, // (time, shard, payload)
        respawn: u32,
        interval: SimDuration,
    }

    impl ShardedProcess for Tracer {
        type Event = u32;
        fn handle(
            &mut self,
            shard: ShardId,
            now: SimTime,
            ev: u32,
            ctx: &mut ShardContext<'_, u32>,
        ) {
            self.trace.push((now, shard.0, ev));
            if ev < self.respawn {
                ctx.schedule(now + self.interval, ev + 1);
            }
        }
    }

    struct FlatTracer {
        trace: Vec<(SimTime, u32, u32)>,
        respawn: u32,
        interval: SimDuration,
    }

    impl Process for FlatTracer {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.trace.push((now, 0, ev));
            if ev < self.respawn {
                q.schedule(now + self.interval, ev + 1);
            }
        }
    }

    #[test]
    fn one_shard_matches_the_flat_engine_bit_for_bit() {
        let interval = SimDuration::from_micros(3);
        let mut flat = Engine::new().with_horizon(SimTime::from_micros(40));
        let mut flat_world = FlatTracer {
            trace: Vec::new(),
            respawn: 1_000,
            interval,
        };
        flat.schedule(SimTime::ZERO, 0);
        flat.schedule(SimTime::from_micros(5), 100);
        let flat_outcome = flat.run(&mut flat_world);

        let mut sharded = ShardedEngine::new(1).with_horizon(SimTime::from_micros(40));
        let mut world = Tracer {
            trace: Vec::new(),
            respawn: 1_000,
            interval,
        };
        sharded.schedule(ShardId(0), SimTime::ZERO, 0);
        sharded.schedule(ShardId(0), SimTime::from_micros(5), 100);
        let outcome = sharded.run(&mut world);

        assert_eq!(outcome, flat_outcome);
        assert_eq!(world.trace, flat_world.trace);
        assert_eq!(sharded.now(), flat.now());
        assert_eq!(sharded.processed(), flat.processed());
        assert_eq!(sharded.pending(), flat.pending());
    }

    #[test]
    fn sharded_runs_replay_deterministically() {
        let run = || {
            let mut engine = ShardedEngine::new(4);
            let mut world = Bouncer { log: Vec::new() };
            for s in 0..4u32 {
                engine.schedule(ShardId(s), SimTime::from_nanos(u64::from(s % 2)), s);
            }
            let outcome = engine.run(&mut world);
            (outcome, world.log, engine.processed())
        };
        assert_eq!(run(), run());
    }

    /// Every event hops to the next shard until its payload hits 40.
    struct Bouncer {
        log: Vec<(SimTime, u32, u32)>,
    }

    impl ShardedProcess for Bouncer {
        type Event = u32;
        fn handle(
            &mut self,
            shard: ShardId,
            now: SimTime,
            ev: u32,
            ctx: &mut ShardContext<'_, u32>,
        ) {
            self.log.push((now, shard.0, ev));
            if ev < 40 {
                let to = ShardId((shard.0 + 1) % 4);
                ctx.send(to, now + SimDuration::from_nanos(7), ev + 10);
            }
        }
    }

    #[test]
    fn mailbox_merge_orders_by_time_shard_seq_not_send_order() {
        // Shard 2 executes FIRST (t=0) and sends to shard 0 arriving at
        // t=100; shard 1 executes later (t=5) and sends arriving at the
        // same t=100. The merge rule (time, source shard, send seq) must
        // pop shard 1's payload first despite shard 2 sending first.
        struct W {
            received: Vec<u32>,
        }
        impl ShardedProcess for W {
            type Event = u32;
            fn handle(
                &mut self,
                shard: ShardId,
                _now: SimTime,
                ev: u32,
                ctx: &mut ShardContext<'_, u32>,
            ) {
                if shard == ShardId(0) {
                    self.received.push(ev);
                } else {
                    ctx.send(ShardId(0), SimTime::from_nanos(100), ev);
                }
            }
        }
        let mut engine = ShardedEngine::new(3);
        engine.schedule(ShardId(2), SimTime::ZERO, 22);
        engine.schedule(ShardId(1), SimTime::from_nanos(5), 11);
        let mut world = W {
            received: Vec::new(),
        };
        assert_eq!(engine.run(&mut world), RunOutcome::Drained);
        assert_eq!(world.received, vec![11, 22]);
    }

    #[test]
    fn local_events_fire_before_mailbox_arrivals_at_equal_times() {
        // Shard 0 has a LOCAL event at t=100; shard 1 sends an arrival for
        // the same t=100. The local event must pop first.
        struct W {
            order: Vec<&'static str>,
        }
        impl ShardedProcess for W {
            type Event = &'static str;
            fn handle(
                &mut self,
                shard: ShardId,
                _now: SimTime,
                ev: &'static str,
                ctx: &mut ShardContext<'_, &'static str>,
            ) {
                if shard == ShardId(1) {
                    ctx.send(ShardId(0), SimTime::from_nanos(100), "remote");
                } else {
                    self.order.push(ev);
                }
            }
        }
        let mut engine = ShardedEngine::new(2);
        engine.schedule(ShardId(1), SimTime::ZERO, "trigger");
        engine.schedule(ShardId(0), SimTime::from_nanos(100), "local");
        let mut world = W { order: Vec::new() };
        assert_eq!(engine.run(&mut world), RunOutcome::Drained);
        assert_eq!(world.order, vec!["local", "remote"]);
    }

    #[test]
    fn equal_time_pops_go_to_the_lowest_shard_first() {
        struct W {
            order: Vec<u32>,
        }
        impl ShardedProcess for W {
            type Event = ();
            fn handle(
                &mut self,
                shard: ShardId,
                _now: SimTime,
                _ev: (),
                _ctx: &mut ShardContext<'_, ()>,
            ) {
                self.order.push(shard.0);
            }
        }
        let mut engine = ShardedEngine::new(3);
        for s in [2u32, 0, 1] {
            engine.schedule(ShardId(s), SimTime::from_nanos(9), ());
        }
        let mut world = W { order: Vec::new() };
        engine.run(&mut world);
        assert_eq!(world.order, vec![0, 1, 2]);
    }

    #[test]
    fn horizon_and_budget_match_flat_semantics() {
        let mut engine = ShardedEngine::new(2).with_horizon(SimTime::from_micros(3));
        engine.schedule(ShardId(0), SimTime::ZERO, 0);
        let mut world = Tracer {
            trace: Vec::new(),
            respawn: 1_000,
            interval: SimDuration::from_micros(1),
        };
        assert_eq!(engine.run(&mut world), RunOutcome::HorizonReached);
        // t=0,1,2,3 us processed; the t=4 us event stays queued.
        assert_eq!(world.trace.len(), 4);
        assert_eq!(engine.pending(), 1);

        let mut engine = ShardedEngine::new(2).with_event_budget(7);
        engine.schedule(ShardId(1), SimTime::ZERO, 0);
        let mut world = Tracer {
            trace: Vec::new(),
            respawn: 1_000,
            interval: SimDuration::from_nanos(5),
        };
        assert_eq!(engine.run(&mut world), RunOutcome::BudgetExhausted);
        assert_eq!(world.trace.len(), 7);
    }

    #[test]
    #[should_panic]
    fn zero_shards_panics() {
        let _ = ShardedEngine::<()>::new(0);
    }

    #[test]
    #[should_panic]
    fn sending_to_an_unknown_shard_panics() {
        struct W;
        impl ShardedProcess for W {
            type Event = ();
            fn handle(
                &mut self,
                _s: ShardId,
                now: SimTime,
                _ev: (),
                ctx: &mut ShardContext<'_, ()>,
            ) {
                ctx.send(ShardId(9), now, ());
            }
        }
        let mut engine = ShardedEngine::new(2);
        engine.schedule(ShardId(0), SimTime::ZERO, ());
        engine.run(&mut W);
    }
}
