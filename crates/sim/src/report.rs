//! Experiment report containers.
//!
//! Every figure/table harness in the workspace produces a [`Table`] or a
//! [`Figure`] (a set of named [`Series`]) and prints it in a uniform,
//! paper-vs-measured layout. Keeping this in the substrate crate lets the
//! bench harness, the examples and the integration tests share one format.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single row of a [`Table`]: a label plus one cell per column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (e.g. a workload configuration name).
    pub label: String,
    /// Cell values, one per table column.
    pub cells: Vec<String>,
}

impl Row {
    /// Creates a row from a label and displayable cells.
    pub fn new<L: Into<String>, C: fmt::Display>(
        label: L,
        cells: impl IntoIterator<Item = C>,
    ) -> Self {
        Row {
            label: label.into(),
            cells: cells.into_iter().map(|c| c.to_string()).collect(),
        }
    }
}

/// A labelled table with a header, as printed by the figure harness.
///
/// ```
/// use dredbox_sim::report::{Row, Table};
/// let mut t = Table::new("Table I", ["Configuration", "vCPUs", "RAM"]);
/// t.push(Row::new("Random", ["1-32 cores", "1-32 GB"]));
/// let out = t.to_string();
/// assert!(out.contains("Random"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. "Table I — VM workloads").
    pub title: String,
    /// Column headers. The first header labels the row-label column.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new<T: Into<String>, H: Into<String>>(
        title: T,
        headers: impl IntoIterator<Item = H>,
    ) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Looks up a row by label.
    pub fn row(&self, label: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.label == label)
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compute column widths across header + rows.
        let cols = self.headers.len().max(
            self.rows
                .iter()
                .map(|r| r.cells.len() + 1)
                .max()
                .unwrap_or(1),
        );
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            widths[0] = widths[0].max(row.label.len());
            for (i, c) in row.cells.iter().enumerate() {
                if i + 1 < cols {
                    widths[i + 1] = widths[i + 1].max(c.len());
                }
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        for (i, h) in self.headers.iter().enumerate() {
            write!(f, "{:<width$}  ", h, width = widths[i])?;
        }
        writeln!(f)?;
        for (i, _) in self.headers.iter().enumerate() {
            write!(f, "{:-<width$}  ", "", width = widths[i])?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "{:<width$}  ", row.label, width = widths[0])?;
            for (i, c) in row.cells.iter().enumerate() {
                let w = widths.get(i + 1).copied().unwrap_or(0);
                write!(f, "{:<width$}  ", c, width = w)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A named series of `(x, y)` points, one line/box-group of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series name (e.g. "dReDBox scale-up, 32 VMs").
    pub name: String,
    /// Label of the x quantity.
    pub x_label: String,
    /// Label of the y quantity.
    pub y_label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new<N: Into<String>, X: Into<String>, Y: Into<String>>(
        name: N,
        x_label: X,
        y_label: Y,
    ) -> Self {
        Series {
            name: name.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Maximum y value, if any point exists.
    pub fn y_max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.max(y))))
    }

    /// Minimum y value, if any point exists.
    pub fn y_min(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |m: f64| m.min(y))))
    }
}

/// A reproduced figure: a caption plus one or more series and free-form notes
/// comparing against the paper's reported shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure identifier and caption (e.g. "Figure 12 — % resources powered off").
    pub caption: String,
    /// The series making up the figure.
    pub series: Vec<Series>,
    /// Notes comparing measured output against the paper's claims.
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure with the given caption.
    pub fn new<C: Into<String>>(caption: C) -> Self {
        Figure {
            caption: caption.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Adds a comparison note.
    pub fn note<N: Into<String>>(&mut self, note: N) {
        self.notes.push(note.into());
    }

    /// Looks up a series by name.
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.caption)?;
        for s in &self.series {
            writeln!(f, "-- {} [{} vs {}]", s.name, s.y_label, s.x_label)?;
            for (x, y) in &s.points {
                writeln!(f, "   {x:>14.6}  {y:>14.6e}")?;
            }
        }
        if !self.notes.is_empty() {
            writeln!(f, "-- notes")?;
            for n in &self.notes {
                writeln!(f, "   * {n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip_and_lookup() {
        let mut t = Table::new("Table I", ["Configuration", "vCPUs", "RAM"]);
        t.push(Row::new("Random", ["1-32 cores", "1-32 GB"]));
        t.push(Row::new("High RAM", ["1-8 cores", "24-32 GB"]));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.row("High RAM").unwrap().cells[1], "24-32 GB");
        assert!(t.row("Missing").is_none());
        let rendered = t.to_string();
        assert!(rendered.contains("Table I"));
        assert!(rendered.contains("Random"));
        assert!(rendered.contains("24-32 GB"));
    }

    #[test]
    fn series_extrema() {
        let mut s = Series::new("ber", "power (dBm)", "BER");
        assert!(s.is_empty());
        assert_eq!(s.y_max(), None);
        s.push(-12.0, 1e-13);
        s.push(-11.0, 1e-14);
        assert_eq!(s.len(), 2);
        assert_eq!(s.y_max(), Some(1e-13));
        assert_eq!(s.y_min(), Some(1e-14));
    }

    #[test]
    fn figure_display_contains_everything() {
        let mut fig = Figure::new("Figure 7 — BER vs received power");
        let mut s = Series::new("channel 1", "received power (dBm)", "BER");
        s.push(-11.7, 3.2e-13);
        fig.push_series(s);
        fig.note("all links below 1e-12 as in the paper");
        let out = fig.to_string();
        assert!(out.contains("Figure 7"));
        assert!(out.contains("channel 1"));
        assert!(out.contains("notes"));
        assert!(fig.series_named("channel 1").is_some());
        assert!(fig.series_named("channel 9").is_none());
    }

    #[test]
    fn table_handles_ragged_rows() {
        let mut t = Table::new("ragged", ["a", "b"]);
        t.push(Row::new("r1", ["1", "2", "3"]));
        t.push(Row::new("r2", Vec::<String>::new()));
        // Must not panic while formatting.
        let _ = t.to_string();
    }
}
