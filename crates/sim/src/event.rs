//! Deterministic event queue.
//!
//! Events are ordered by their scheduled [`SimTime`]; ties are broken by
//! insertion order so that two runs of the same experiment with the same seed
//! always produce identical traces.
//!
//! # Ordering contract
//!
//! Every [`EventQueue::schedule`] call stamps the event with a monotonically
//! increasing sequence number, and [`EventQueue::pop`] returns events in
//! strict (time, seq) order: earliest time first, and — for events scheduled
//! at the *same* time — FIFO in push order. Nothing else influences the
//! order; in particular the event payload is never compared. The
//! [`shard`](crate::shard) module extends this same contract across
//! per-shard queues to (time, shard, seq): at equal times the lowest shard
//! pops first, and cross-shard mailbox arrivals merge by
//! (time, source shard, send seq).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of events of type `E`.
///
/// ```
/// use dredbox_sim::event::EventQueue;
/// use dredbox_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(5), "b");
/// q.schedule(SimTime::from_nanos(5), "c");
/// q.schedule(SimTime::from_nanos(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and, for
        // equal times, the lowest sequence number) comes out first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<T: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: T) {
        for (at, ev) in iter {
            self.schedule(at, ev);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<T: IntoIterator<Item = (SimTime, E)>>(iter: T) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(10)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(30), 3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(42), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let expected: Vec<_> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn fifo_tie_break_holds_between_interleaved_times() {
        // Equal-time events must pop in push order even when pushes at
        // other times are interleaved between them and the heap has been
        // exercised by pops in the meantime.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(20), "t20-first");
        q.schedule(SimTime::from_nanos(10), "t10-first");
        q.schedule(SimTime::from_nanos(20), "t20-second");
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "t10-first")));
        q.schedule(SimTime::from_nanos(20), "t20-third");
        q.schedule(SimTime::from_nanos(10), "t10-late");
        // The late t=10 event still precedes every t=20 event…
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "t10-late")));
        // …and the t=20 events come out strictly in push order.
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "t20-first")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "t20-second")));
        assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "t20-third")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn collect_and_clear() {
        let mut q: EventQueue<u8> = (0..10u8)
            .map(|i| (SimTime::from_nanos(u64::from(i)), i))
            .collect();
        assert_eq!(q.len(), 10);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        #[test]
        fn popped_times_are_monotone(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        #[test]
        fn queue_preserves_count(times in proptest::collection::vec(0u64..1_000, 0..100)) {
            let mut q = EventQueue::new();
            for t in &times {
                q.schedule(SimTime::from_nanos(*t), ());
            }
            let mut n = 0usize;
            while q.pop().is_some() {
                n += 1;
            }
            prop_assert_eq!(n, times.len());
        }
    }
}
