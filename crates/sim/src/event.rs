//! Deterministic event queue.
//!
//! Events are ordered by their scheduled [`SimTime`]; ties are broken by
//! insertion order so that two runs of the same experiment with the same seed
//! always produce identical traces.
//!
//! # Ordering contract
//!
//! Every [`EventQueue::schedule`] call stamps the event with a monotonically
//! increasing sequence number, and [`EventQueue::pop`] returns events in
//! strict (time, seq) order: earliest time first, and — for events scheduled
//! at the *same* time — FIFO in push order. Nothing else influences the
//! order; in particular the event payload is never compared. The
//! [`shard`](crate::shard) module extends this same contract across
//! per-shard queues to (time, shard, seq): at equal times the lowest shard
//! pops first, and cross-shard mailbox arrivals merge by
//! (time, source shard, send seq).
//!
//! # Representation
//!
//! The (time, seq) pair is packed into one `u128` sort key — time in the
//! high 64 bits, sequence number in the low 64 — so every ordering decision
//! is a single branchless integer comparison. Discrete-event workloads are
//! tie-heavy (bursts of same-instant events), and a two-level comparator
//! turns each tie into a data-dependent branch the predictor keeps missing;
//! the packed key compares ties and non-ties through the same instruction.
//!
//! Small queues — the steady state of a sharded engine, where each rack
//! calendar holds a handful of in-flight chains — skip the heap entirely:
//! entries live in an unsorted vector and pop does a branch-free linear
//! argmin over the packed keys, which for a few elements is cheaper than
//! any sift. Once a queue outgrows the small representation it spills into
//! a binary heap and stays there (no flapping on the boundary).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::mem;

use crate::time::SimTime;

/// Queues at most this deep stay in the linear-scan representation.
const SMALL_MAX: usize = 8;

/// A time-ordered queue of events of type `E`.
///
/// ```
/// use dredbox_sim::event::EventQueue;
/// use dredbox_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(5), "b");
/// q.schedule(SimTime::from_nanos(5), "c");
/// q.schedule(SimTime::from_nanos(1), "a");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Unsorted entries while the queue is small; empty once spilled.
    small: Vec<Entry<E>>,
    /// Index of the minimum key in `small`; valid while `small` is
    /// non-empty, so peeks are O(1) and only pops rescan.
    small_min: usize,
    /// Heap representation after the queue outgrows [`SMALL_MAX`].
    heap: BinaryHeap<Entry<E>>,
    /// Whether the queue has spilled into the heap representation.
    spilled: bool,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    /// `(time << 64) | seq`: orders by time, then FIFO within a time, in
    /// one integer comparison.
    key: u128,
    event: E,
}

/// Packs a (time, seq) pair into the single-comparison sort key.
fn key(at: SimTime, seq: u64) -> u128 {
    (u128::from(at.as_nanos()) << 64) | u128::from(seq)
}

/// Recovers the timestamp from a packed key.
fn key_time(key: u128) -> SimTime {
    SimTime::from_nanos((key >> 64) as u64)
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and, for
        // equal times, the lowest sequence number) comes out first.
        other.key.cmp(&self.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            small: Vec::new(),
            small_min: 0,
            heap: BinaryHeap::new(),
            spilled: false,
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            key: key(at, seq),
            event,
        };
        if self.spilled {
            self.heap.push(entry);
        } else {
            if self.small.is_empty() || entry.key < self.small[self.small_min].key {
                self.small_min = self.small.len();
            }
            self.small.push(entry);
            if self.small.len() > SMALL_MAX {
                self.heap = BinaryHeap::from(mem::take(&mut self.small));
                self.spilled = true;
            }
        }
    }

    /// Rescans the small representation for its minimum key.
    fn rescan_small_min(&mut self) {
        let mut best = 0;
        let mut best_key = u128::MAX;
        for (i, e) in self.small.iter().enumerate() {
            if e.key < best_key {
                best_key = e.key;
                best = i;
            }
        }
        self.small_min = best;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.spilled {
            return self.heap.pop().map(|e| (key_time(e.key), e.event));
        }
        if self.small.is_empty() {
            return None;
        }
        let e = self.small.swap_remove(self.small_min);
        self.rescan_small_min();
        Some((key_time(e.key), e.event))
    }

    /// The time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.spilled {
            return self.heap.peek().map(|e| key_time(e.key));
        }
        self.small.get(self.small_min).map(|e| key_time(e.key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        if self.spilled {
            self.heap.len()
        } else {
            self.small.len()
        }
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.small.clear();
        self.heap.clear();
        self.spilled = false;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(3), 2);
        q.schedule(SimTime::from_nanos(10), 3);
        q.schedule(SimTime::from_nanos(3), 4);
        q.schedule(SimTime::from_nanos(7), 5);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime::from_nanos(3), 2),
                (SimTime::from_nanos(3), 4),
                (SimTime::from_nanos(7), 5),
                (SimTime::from_nanos(10), 1),
                (SimTime::from_nanos(10), 3),
            ]
        );
    }

    #[test]
    fn interleaved_scheduling_keeps_fifo_within_a_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        q.schedule(t, "a");
        q.schedule(t, "b");
        assert_eq!(q.pop(), Some((t, "a")));
        q.schedule(t, "c");
        assert_eq!(q.pop(), Some((t, "b")));
        assert_eq!(q.pop(), Some((t, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn spilling_past_the_small_representation_keeps_the_order() {
        // Drive the queue well past SMALL_MAX with colliding timestamps
        // and check the (time, FIFO) contract straddles the spill.
        let mut q = EventQueue::new();
        let n = 4 * SMALL_MAX as u64;
        for i in 0..n {
            q.schedule(SimTime::from_nanos((i % 5) * 10), i);
        }
        let mut popped: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop()).collect();
        let mut expect: Vec<(SimTime, u64)> = (0..n)
            .map(|i| (SimTime::from_nanos((i % 5) * 10), i))
            .collect();
        expect.sort_by_key(|&(at, i)| (at, i));
        assert_eq!(popped, expect);
        // Interleave pops and pushes across the boundary too.
        for i in 0..n {
            q.schedule(SimTime::from_nanos(i), i);
            if i % 3 == 0 {
                q.pop();
            }
        }
        popped = std::iter::from_fn(|| q.pop()).collect();
        assert!(popped.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn len_peek_and_clear_track_the_heap() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(9), ());
        q.schedule(SimTime::from_nanos(2), ());
        q.schedule(SimTime::from_nanos(9), ());
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.schedule(SimTime::from_nanos(1), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(1), ())));
    }
}
