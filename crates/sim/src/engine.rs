//! A minimal discrete-event engine.
//!
//! The engine drives an [`EventQueue`] against a user-supplied world state.
//! Handling an event may schedule further events; the engine runs until the
//! queue drains, a time horizon is reached, or an event budget is exhausted.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A process reacts to events of type `E`, mutating its own state and
/// scheduling follow-up events.
pub trait Process {
    /// The event type handled by this process.
    type Event;

    /// Handles `event` occurring at `now`. Follow-up events are scheduled on
    /// `queue`; scheduling in the past is a logic error and will panic inside
    /// [`Engine::run`].
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Outcome of an [`Engine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Drained,
    /// The time horizon was reached before the queue drained.
    HorizonReached,
    /// The event budget was exhausted before the queue drained.
    BudgetExhausted,
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RunOutcome::Drained => "drained",
            RunOutcome::HorizonReached => "horizon reached",
            RunOutcome::BudgetExhausted => "event budget exhausted",
        })
    }
}

/// Discrete-event engine: a clock plus an event queue.
///
/// ```
/// use dredbox_sim::engine::{Engine, Process, RunOutcome};
/// use dredbox_sim::event::EventQueue;
/// use dredbox_sim::time::{SimDuration, SimTime};
///
/// struct Counter { fired: u32 }
/// impl Process for Counter {
///     type Event = ();
///     fn handle(&mut self, now: SimTime, _ev: (), q: &mut EventQueue<()>) {
///         self.fired += 1;
///         if self.fired < 5 {
///             q.schedule(now + SimDuration::from_nanos(10), ());
///         }
///     }
/// }
///
/// let mut engine = Engine::new();
/// engine.schedule(SimTime::ZERO, ());
/// let mut world = Counter { fired: 0 };
/// assert_eq!(engine.run(&mut world), RunOutcome::Drained);
/// assert_eq!(world.fired, 5);
/// assert_eq!(engine.now(), SimTime::from_nanos(40));
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    now: SimTime,
    queue: EventQueue<E>,
    horizon: Option<SimTime>,
    max_events: Option<u64>,
    processed: u64,
}

impl<E> Engine<E> {
    /// Creates an engine with the clock at [`SimTime::ZERO`] and no limits.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            horizon: None,
            max_events: None,
            processed: 0,
        }
    }

    /// Stops the run once the clock would advance past `horizon`.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Stops the run after `max_events` events have been processed.
    pub fn with_event_budget(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        self.queue.schedule(at, event);
    }

    /// Runs the simulation until the queue drains or a limit is hit.
    pub fn run<P: Process<Event = E>>(&mut self, world: &mut P) -> RunOutcome {
        loop {
            if let Some(max) = self.max_events {
                if self.processed >= max {
                    return RunOutcome::BudgetExhausted;
                }
            }
            let Some(next_time) = self.queue.peek_time() else {
                return RunOutcome::Drained;
            };
            if let Some(h) = self.horizon {
                if next_time > h {
                    return RunOutcome::HorizonReached;
                }
            }
            let (at, event) = self.queue.pop().expect("peeked event must exist");
            debug_assert!(at >= self.now, "event queue produced a time in the past");
            self.now = at;
            self.processed += 1;
            world.handle(self.now, event, &mut self.queue);
        }
    }
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Pinger {
        count: u32,
        stop_at: u32,
        interval: SimDuration,
    }

    impl Process for Pinger {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.count += 1;
            if ev < self.stop_at {
                q.schedule(now + self.interval, ev + 1);
            }
        }
    }

    #[test]
    fn runs_to_completion() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::ZERO, 0);
        let mut world = Pinger {
            count: 0,
            stop_at: 9,
            interval: SimDuration::from_micros(1),
        };
        assert_eq!(engine.run(&mut world), RunOutcome::Drained);
        assert_eq!(world.count, 10);
        assert_eq!(engine.now(), SimTime::from_micros(9));
        assert_eq!(engine.processed(), 10);
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn horizon_stops_the_run() {
        let mut engine = Engine::new().with_horizon(SimTime::from_micros(3));
        engine.schedule(SimTime::ZERO, 0);
        let mut world = Pinger {
            count: 0,
            stop_at: 1_000,
            interval: SimDuration::from_micros(1),
        };
        assert_eq!(engine.run(&mut world), RunOutcome::HorizonReached);
        // Events at t=0,1,2,3 us were processed; the t=4 us event stayed queued.
        assert_eq!(world.count, 4);
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn event_budget_stops_the_run() {
        let mut engine = Engine::new().with_event_budget(7);
        engine.schedule(SimTime::ZERO, 0);
        let mut world = Pinger {
            count: 0,
            stop_at: 1_000,
            interval: SimDuration::from_nanos(5),
        };
        assert_eq!(engine.run(&mut world), RunOutcome::BudgetExhausted);
        assert_eq!(world.count, 7);
    }

    #[test]
    fn run_outcome_displays() {
        assert_eq!(RunOutcome::Drained.to_string(), "drained");
        assert_eq!(RunOutcome::HorizonReached.to_string(), "horizon reached");
        assert_eq!(
            RunOutcome::BudgetExhausted.to_string(),
            "event budget exhausted"
        );
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<u32> = Engine::new();
        engine.schedule(SimTime::from_nanos(10), 0);
        let mut world = Pinger {
            count: 0,
            stop_at: 0,
            interval: SimDuration::ZERO,
        };
        engine.run(&mut world);
        // Clock is now at 10 ns; scheduling at 5 ns must panic.
        engine.schedule(SimTime::from_nanos(5), 1);
    }
}
