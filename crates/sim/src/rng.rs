//! Deterministic random-number generation.
//!
//! Every experiment in the reproduction is driven by a [`SimRng`] seeded from
//! an explicit `u64`, so that figures and tests are reproducible run-to-run.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A seedable, reproducible RNG used throughout the workspace.
///
/// Wraps a ChaCha12 stream cipher generator: fast, high-quality, and with a
/// stable output stream across platforms, which keeps the experiment harness
/// deterministic.
///
/// ```
/// use dredbox_sim::rng::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.range(0..100u32), b.range(0..100u32));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12Rng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng {
            inner: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; useful to give each simulated
    /// component its own stream without coupling their consumption order.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base = self.inner.next_u64();
        SimRng::seed(base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample from `range`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.inner.gen::<f64>() < p
    }

    /// Sample from a normal distribution with the given mean and standard
    /// deviation, using the Box-Muller transform.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        // Box-Muller: two uniforms -> one standard normal.
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Sample from a log-normal distribution parameterised by the mean and
    /// standard deviation of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Sample from an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Chooses one element of `slice` uniformly at random.
    ///
    /// Returns `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let idx = self.inner.gen_range(0..slice.len());
            Some(&slice[idx])
        }
    }

    /// Shuffles `slice` in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Access the underlying [`rand::Rng`] for distributions not wrapped here.
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.range(0..1_000_000u64), b.range(0..1_000_000u64));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(2);
        let va: Vec<u64> = (0..16).map(|_| a.range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_deterministic() {
        let mut a = SimRng::seed(9);
        let mut b = SimRng::seed(9);
        let mut fa = a.fork(3);
        let mut fb = b.fork(3);
        assert_eq!(fa.range(0..u32::MAX), fb.range(0..u32::MAX));
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = SimRng::seed(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std was {}", var.sqrt());
    }

    #[test]
    fn exponential_has_reasonable_mean() {
        let mut rng = SimRng::seed(55);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::seed(1);
        assert_eq!(rng.choose::<u8>(&[]), None);
        let data = [1, 2, 3, 4, 5];
        assert!(data.contains(rng.choose(&data).unwrap()));
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn chance_rejects_invalid_probability() {
        SimRng::seed(0).chance(1.5);
    }

    proptest! {
        #[test]
        fn range_respects_bounds(seed in 0u64..1000, lo in 0u32..100, width in 1u32..100) {
            let mut rng = SimRng::seed(seed);
            let hi = lo + width;
            for _ in 0..32 {
                let x = rng.range(lo..hi);
                prop_assert!(x >= lo && x < hi);
            }
        }

        #[test]
        fn unit_is_in_unit_interval(seed in 0u64..1000) {
            let mut rng = SimRng::seed(seed);
            for _ in 0..64 {
                let u = rng.unit();
                prop_assert!((0.0..1.0).contains(&u));
            }
        }
    }
}
