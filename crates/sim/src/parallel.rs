//! Threaded epoch runner for the sharded engine.
//!
//! [`ShardedEngine::run_threaded`] executes shard calendars on worker
//! threads under *conservative synchronization*: time is carved into
//! epochs, and within an epoch every shard may advance its calendar up to
//! a per-shard **horizon** no cross-shard message can beat. Horizons come
//! from declared channel latencies: if every message from shard `q` to
//! shard `s` arrives at least `L(q→s)` after it is sent, then shard `s`
//! can safely process everything strictly before
//! `min over q (next_time(q) + L(q→s))` — any message `q` emits while
//! working through its own calendar arrives at or after that bound.
//! Cross-shard sends are buffered in per-shard outboxes and exchanged as
//! mailbox batches at the epoch barrier, merged under the same
//! (arrival time, source shard, send seq) contract as the serial mailbox,
//! so the event order every shard observes is a pure function of
//! timestamps and ids, never of thread interleaving.
//!
//! # Determinism
//!
//! `run_threaded` produces bit-identical worlds and reports for every
//! worker count, including 1: the epoch schedule (horizons, barrier
//! times, serial batches) is computed from event timestamps only, each
//! shard's event sequence within an epoch is fully ordered by its own
//! calendar and inbox, and barrier routing walks source shards in
//! ascending order. Threads change *which wall-clock instant* a shard's
//! slice runs at, never what it computes.
//!
//! The one caveat is a *binding* event budget. When fewer budgeted events
//! remain than are currently pending, the runner drops to a fine-grained
//! single-step mode that replays the exact global (time, shard) order of
//! [`ShardedEngine::run`], so the cutoff lands on a deterministic event
//! and `processed()` / [`RunOutcome`] match the serial engine exactly. If
//! an intra-epoch scheduling burst exhausts the budget before that guard
//! engages, the totals are still exact but *which* near-cutoff events got
//! processed is unspecified. Scenario budgets are runaway guards sized
//! far above their traces, so the corner never binds there.
//!
//! # Serial events
//!
//! Events scheduled through [`ShardedEngine::schedule_serial`] (or sent
//! with [`WorkerContext::send_serial`]) execute at epoch barriers on the
//! coordinating thread with the world reassembled whole — this is where
//! cluster-tier decisions that touch many racks (drain, upgrade, fault,
//! repair, rebalance) live. A serial event at time `F` fences the run: no
//! shard processes past `F` before it, it observes every shard's state as
//! of `F`, and parallel events at exactly `F` fire after it. Serial
//! events order among themselves by (time, shard, seq).

use std::collections::BinaryHeap;
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::mpsc;
use std::thread;

use crate::engine::RunOutcome;
use crate::event::EventQueue;
use crate::shard::{MailEntry, SerialEntry, ShardId, ShardedEngine};
use crate::time::{SimDuration, SimTime};

/// Effectively-unbounded horizon cap.
const FAR_FUTURE: SimTime = SimTime::from_nanos(u64::MAX);

/// A world that can be torn into per-shard workers for epoch execution.
///
/// [`ParallelWorld::split`] moves each shard's state out into an owned
/// [`WorldWorker`], leaving the world hollow; [`ParallelWorld::reunite`]
/// is the exact inverse. The runner splits once at start, reunites around
/// every serial barrier so [`ParallelWorld::handle_serial`] sees the
/// whole world, and reunites a final time before returning.
pub trait ParallelWorld {
    /// The event type simulated by this world.
    type Event: Send;
    /// Owned per-shard slice of the world, sent across worker threads.
    type Worker: WorldWorker<Event = Self::Event> + Send;

    /// Tears the world into exactly `shards` workers; worker `s` handles
    /// every parallel event of shard `s`.
    fn split(&mut self, shards: usize) -> Vec<Self::Worker>;

    /// Puts the workers produced by [`ParallelWorld::split`] back.
    fn reunite(&mut self, workers: Vec<Self::Worker>);

    /// Latency floor of the `from → to` message channel: every
    /// [`WorkerContext::send`] from `from` to `to` must arrive at least
    /// this long after it is sent. `None` means the channel is never
    /// used. `Some(SimDuration::ZERO)` is rejected at run start — zero
    /// lookahead cannot make progress.
    fn latency(&self, from: ShardId, to: ShardId) -> Option<SimDuration>;

    /// Handles one serial event at an epoch barrier, with the world
    /// reassembled and exclusive.
    fn handle_serial(
        &mut self,
        shard: ShardId,
        now: SimTime,
        event: Self::Event,
        ctx: &mut SerialContext<'_, Self::Event>,
    );
}

/// The per-shard half of a [`ParallelWorld`]: handles that shard's
/// events during parallel epochs. Must only touch state it owns — the
/// runner's determinism argument rests on shard state being disjoint.
pub trait WorldWorker {
    /// The event type handled by this worker.
    type Event: Send;

    /// Handles `event` firing on `shard` at `now`. Local follow-ups and
    /// cross-shard sends go through `ctx`.
    fn handle(
        &mut self,
        shard: ShardId,
        now: SimTime,
        event: Self::Event,
        ctx: &mut WorkerContext<'_, Self::Event>,
    );
}

/// One buffered cross-shard send, waiting for the epoch barrier.
#[derive(Debug)]
struct Outgoing<E> {
    to: u32,
    at: SimTime,
    /// Send seq stamped from the source lane's counter (parallel sends
    /// only; serial sends are sequenced at barrier insertion).
    seq: u64,
    serial: bool,
    event: E,
}

/// Per-shard engine state, owned by whichever thread runs the shard.
#[derive(Debug)]
struct Lane<E> {
    queue: EventQueue<E>,
    inbox: BinaryHeap<MailEntry<E>>,
    send_seq: u64,
    /// Outgoing cross-shard sends; drained at the barrier, buffer reused
    /// across epochs so steady-state routing does not allocate.
    outbox: Vec<Outgoing<E>>,
}

impl<E> Lane<E> {
    /// Earliest pending time across calendar and inbox, `None` if idle.
    fn next_time(&self) -> Option<SimTime> {
        match (self.queue.peek_time(), self.inbox.peek().map(|e| e.at)) {
            (None, None) => None,
            (Some(t), None) | (None, Some(t)) => Some(t),
            (Some(l), Some(m)) => Some(l.min(m)),
        }
    }

    /// Pops the earliest event; the local calendar wins ties.
    fn pop(&mut self) -> Option<(SimTime, E)> {
        let from_mail = match (self.queue.peek_time(), self.inbox.peek().map(|e| e.at)) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(l), Some(m)) => m < l,
        };
        if from_mail {
            self.inbox.pop().map(|e| (e.at, e.event))
        } else {
            self.queue.pop()
        }
    }

    fn pending(&self) -> usize {
        self.queue.len() + self.inbox.len()
    }
}

/// Scheduling surface handed to [`WorldWorker::handle`] during a
/// parallel epoch.
pub struct WorkerContext<'a, E> {
    shard: ShardId,
    now: SimTime,
    lane: &'a mut Lane<E>,
    /// This shard's outbound latency row, enforcing the send contract.
    lat_row: &'a [Option<SimDuration>],
}

impl<E> WorkerContext<'_, E> {
    /// The shard the current event fired on.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` on this shard's own calendar at absolute time
    /// `at` — it may land inside the current epoch and fire immediately
    /// after, exactly like a local schedule in the serial engine.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        self.lane.queue.schedule(at, event);
    }

    /// Sends `event` to shard `to`, arriving at absolute time `at`. A
    /// send to the current shard is a local schedule; anything else is
    /// buffered until the epoch barrier and must respect the declared
    /// channel latency: `at ≥ now + latency(from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if the channel is undeclared or `at` beats its latency.
    pub fn send(&mut self, to: ShardId, at: SimTime, event: E) {
        if to == self.shard {
            self.schedule(at, event);
            return;
        }
        let lat = self.channel_to(to);
        assert!(
            at >= self.now + lat,
            "send {} -> {to} beats the declared channel latency",
            self.shard
        );
        let seq = self.lane.send_seq;
        self.lane.send_seq += 1;
        self.lane.outbox.push(Outgoing {
            to: to.0,
            at,
            seq,
            serial: false,
            event,
        });
    }

    /// Sends a *serial* event attributed to shard `to`, executing at an
    /// epoch barrier once every shard has caught up to `at`. Subject to
    /// the same channel-latency floor as [`WorkerContext::send`]; a
    /// serial send to the *own* shard needs only a nonzero delay (the
    /// event still has to reach the next barrier).
    pub fn send_serial(&mut self, to: ShardId, at: SimTime, event: E) {
        let lat = if to == self.shard {
            SimDuration::from_nanos(1)
        } else {
            self.channel_to(to)
        };
        assert!(
            at >= self.now + lat,
            "serial send {} -> {to} beats the declared channel latency",
            self.shard
        );
        self.lane.outbox.push(Outgoing {
            to: to.0,
            at,
            seq: 0,
            serial: true,
            event,
        });
    }

    fn channel_to(&self, to: ShardId) -> SimDuration {
        self.lat_row
            .get(to.0 as usize)
            .copied()
            .flatten()
            .unwrap_or_else(|| panic!("no declared channel {} -> {to}", self.shard))
    }
}

/// One operation staged by a serial handler, routed by the runner in
/// call order after the handler returns.
struct SerialOp<E> {
    shard: u32,
    at: SimTime,
    serial: bool,
    event: E,
}

/// Scheduling surface handed to [`ParallelWorld::handle_serial`] at an
/// epoch barrier: the handler has exclusive access to the whole world,
/// so events may be placed on any shard with no latency floor.
pub struct SerialContext<'a, E> {
    now: SimTime,
    shards: u32,
    staged: &'a mut Vec<SerialOp<E>>,
}

impl<E> SerialContext<'_, E> {
    /// Current simulated time (the serial event's own timestamp).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules a parallel `event` on `shard`'s calendar at absolute
    /// time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock or `shard` is
    /// out of range.
    pub fn schedule(&mut self, shard: ShardId, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        assert!(
            shard.0 < self.shards,
            "{shard} is not a shard of this engine"
        );
        self.staged.push(SerialOp {
            shard: shard.0,
            at,
            serial: false,
            event,
        });
    }

    /// Schedules a follow-up *serial* event attributed to `shard` at
    /// absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock or `shard` is
    /// out of range.
    pub fn schedule_serial(&mut self, shard: ShardId, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule an event in the past");
        assert!(
            shard.0 < self.shards,
            "{shard} is not a shard of this engine"
        );
        self.staged.push(SerialOp {
            shard: shard.0,
            at,
            serial: true,
            event,
        });
    }
}

/// Pending cross-epoch deliveries for one destination shard, buffered at
/// the coordinator until the shard next activates. The entry buffer is
/// reused; a shard with an empty batch skips the merge entirely.
struct Batch<E> {
    entries: Vec<MailEntry<E>>,
    /// Earliest arrival among `entries`, cached for horizon math.
    min_at: Option<SimTime>,
}

impl<E> Batch<E> {
    fn push(&mut self, entry: MailEntry<E>) {
        self.min_at = Some(match self.min_at {
            Some(t) => t.min(entry.at),
            None => entry.at,
        });
        self.entries.push(entry);
    }

    /// Merges all buffered entries into `lane`'s inbox.
    fn deliver(&mut self, lane: &mut Lane<E>) {
        for entry in self.entries.drain(..) {
            lane.inbox.push(entry);
        }
        self.min_at = None;
    }
}

/// One shard's travelling state: engine lane plus world worker. Units
/// live at the coordinator between epochs and move (owned, through
/// channels) to whichever thread runs them — no cross-thread borrows.
struct Unit<E, Wk> {
    shard: u32,
    lane: Lane<E>,
    worker: Option<Wk>,
    /// Exclusive horizon for the epoch being executed.
    horizon: SimTime,
    /// Events processed during the epoch being executed.
    processed: u64,
    /// Latest event time processed during the epoch being executed.
    max_t: Option<SimTime>,
}

/// One parallel epoch for one shard: pop while strictly below the
/// horizon, claiming from the shared budget before every pop.
fn process_unit<E, Wk: WorldWorker<Event = E>>(
    unit: &mut Unit<E, Wk>,
    claims: &AtomicU64,
    cap: u64,
    lat_row: &[Option<SimDuration>],
) {
    unit.processed = 0;
    unit.max_t = None;
    let shard = ShardId(unit.shard);
    let worker = unit.worker.as_mut().expect("unit carries its worker");
    loop {
        match unit.lane.next_time() {
            Some(at) if at < unit.horizon => {}
            _ => break,
        }
        if claims.fetch_add(1, AtomicOrdering::Relaxed) >= cap {
            break;
        }
        let (at, event) = unit.lane.pop().expect("peeked event must exist");
        unit.processed += 1;
        unit.max_t = Some(at);
        let mut ctx = WorkerContext {
            shard,
            now: at,
            lane: &mut unit.lane,
            lat_row,
        };
        worker.handle(shard, at, event, &mut ctx);
    }
}

/// A batch of units for one worker thread to run, with the epoch's
/// budget cap.
struct Job<E, Wk> {
    units: Vec<Unit<E, Wk>>,
    cap: u64,
}

impl<E: Send> ShardedEngine<E> {
    /// Runs the simulation under conservative-epoch synchronization on
    /// `threads` worker threads (clamped to `1..=shard_count`). Run
    /// control — the event budget checked before every claim, the
    /// horizon against each event's time, [`RunOutcome`] priorities —
    /// is global across all workers and matches [`ShardedEngine::run`].
    /// See the module docs for the determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if the world declares a zero-latency channel, splits into
    /// the wrong number of workers, or a handler violates the send
    /// contract.
    pub fn run_threaded<W>(&mut self, world: &mut W, threads: usize) -> RunOutcome
    where
        W: ParallelWorld<Event = E>,
    {
        let shards = self.queues.len();
        let threads_eff = threads.clamp(1, shards);

        // Channel latency matrix, validated once: a declared channel with
        // zero latency would collapse every horizon onto the global
        // minimum and the epoch loop could not progress.
        let lat: Vec<Vec<Option<SimDuration>>> = (0..shards)
            .map(|from| {
                (0..shards)
                    .map(|to| {
                        if from == to {
                            return None;
                        }
                        let l = world.latency(ShardId(from as u32), ShardId(to as u32));
                        if let Some(d) = l {
                            assert!(
                                d > SimDuration::ZERO,
                                "zero-latency channel shard{from} -> shard{to}: \
                                 conservative epochs cannot make progress"
                            );
                        }
                        l
                    })
                    .collect()
            })
            .collect();

        // Move the per-shard engine state into lanes and tear the world
        // into owned workers; both are restored before returning.
        let workers = world.split(shards);
        assert_eq!(
            workers.len(),
            shards,
            "split must produce exactly one worker per shard"
        );
        let mut slots: Vec<Option<Unit<E, W::Worker>>> = workers
            .into_iter()
            .enumerate()
            .map(|(s, worker)| {
                Some(Unit {
                    shard: s as u32,
                    lane: Lane {
                        queue: mem::take(&mut self.queues[s]),
                        inbox: mem::take(&mut self.mailboxes[s]),
                        send_seq: self.send_seqs[s],
                        outbox: Vec::new(),
                    },
                    worker: Some(worker),
                    horizon: SimTime::ZERO,
                    processed: 0,
                    max_t: None,
                })
            })
            .collect();
        let mut batches: Vec<Batch<E>> = (0..shards)
            .map(|_| Batch {
                entries: Vec::new(),
                min_at: None,
            })
            .collect();
        let mut staged: Vec<SerialOp<E>> = Vec::new();
        let mut t_eff: Vec<Option<SimTime>> = vec![None; shards];
        let mut active: Vec<Unit<E, W::Worker>> = Vec::with_capacity(shards);
        let mut outs: Vec<Outgoing<E>> = Vec::new();
        let mut spares: Vec<Vec<Unit<E, W::Worker>>> = Vec::new();
        let claims = AtomicU64::new(0);
        // Epoch-shape counters, reported on stderr when
        // `DREDBOX_EPOCH_DEBUG` is set: events-per-epoch and the
        // single-unit share tell whether a workload's lookahead feeds the
        // workers enough batch to amortize the barrier.
        let mut dbg_epochs = 0u64;
        let mut dbg_serial = 0u64;
        let mut dbg_fine = 0u64;
        let mut dbg_single = 0u64;
        let mut dbg_units = 0u64;

        let outcome = thread::scope(|scope| {
            // Persistent worker pool: each thread loops on its job
            // channel until the channel drops at the end of the run.
            let (res_tx, res_rx) = mpsc::channel::<Vec<Unit<E, W::Worker>>>();
            let mut job_txs: Vec<mpsc::Sender<Job<E, W::Worker>>> = Vec::new();
            if threads_eff > 1 {
                for _ in 0..threads_eff {
                    let (tx, rx) = mpsc::channel::<Job<E, W::Worker>>();
                    let res_tx = res_tx.clone();
                    let claims = &claims;
                    let lat = &lat;
                    scope.spawn(move || {
                        while let Ok(mut job) = rx.recv() {
                            for unit in &mut job.units {
                                let row = &lat[unit.shard as usize][..];
                                process_unit(unit, claims, job.cap, row);
                            }
                            if res_tx.send(job.units).is_err() {
                                return;
                            }
                        }
                    });
                    job_txs.push(tx);
                }
            }
            drop(res_tx);

            // When the remaining budget is no larger than the pending
            // event count, epochs could overshoot the cutoff; fall back
            // to single-stepping the exact global order of `run`.
            let mut fine_mode = false;

            'run: loop {
                let remaining = match self.max_events {
                    Some(max) => {
                        if self.processed >= max {
                            break 'run RunOutcome::BudgetExhausted;
                        }
                        max - self.processed
                    }
                    None => u64::MAX,
                };

                let mut min_parallel: Option<SimTime> = None;
                for s in 0..shards {
                    let unit = slots[s].as_ref().expect("unit is home at the barrier");
                    let mut t = unit.lane.next_time();
                    if let Some(b) = batches[s].min_at {
                        t = Some(match t {
                            Some(x) => x.min(b),
                            None => b,
                        });
                    }
                    t_eff[s] = t;
                    if let Some(x) = t {
                        min_parallel = Some(match min_parallel {
                            Some(m) => m.min(x),
                            None => x,
                        });
                    }
                }
                let serial_head = self.serial.peek().map(|e| e.at);

                let global_min = match (min_parallel, serial_head) {
                    (None, None) => break 'run RunOutcome::Drained,
                    (Some(p), None) => p,
                    (None, Some(f)) => f,
                    (Some(p), Some(f)) => p.min(f),
                };
                if let Some(h) = self.horizon {
                    if global_min > h {
                        break 'run RunOutcome::HorizonReached;
                    }
                }

                if !fine_mode && self.max_events.is_some() {
                    let pending: u64 = slots
                        .iter()
                        .map(|u| u.as_ref().expect("unit is home").lane.pending() as u64)
                        .sum::<u64>()
                        + batches.iter().map(|b| b.entries.len() as u64).sum::<u64>()
                        + self.serial.len() as u64;
                    if remaining <= pending {
                        fine_mode = true;
                    }
                }

                // Serial phase: the fence is due once every shard's next
                // parallel work is at or past it (serial-first at ties).
                if let Some(f) = serial_head {
                    let due = match min_parallel {
                        None => true,
                        Some(p) => f <= p,
                    };
                    if due {
                        dbg_serial += 1;
                        self.serial_phase(world, &mut slots, &mut batches, &mut staged);
                        continue 'run;
                    }
                }

                if fine_mode {
                    dbg_fine += 1;
                    // Deliver any buffered batches, then replay exactly
                    // one event in the global (time, shard) order.
                    for s in 0..shards {
                        if !batches[s].entries.is_empty() {
                            let unit = slots[s].as_mut().expect("unit is home");
                            batches[s].deliver(&mut unit.lane);
                        }
                    }
                    let mut best: Option<(SimTime, usize)> = None;
                    for (s, slot) in slots.iter().enumerate() {
                        if let Some(t) = slot.as_ref().expect("unit is home").lane.next_time() {
                            let earlier = match best {
                                None => true,
                                Some((bt, _)) => t < bt,
                            };
                            if earlier {
                                best = Some((t, s));
                            }
                        }
                    }
                    let (_, s) = best.expect("min_parallel was Some");
                    let unit = slots[s].as_mut().expect("unit is home");
                    let (at, event) = unit.lane.pop().expect("peeked event must exist");
                    self.processed += 1;
                    self.now = self.now.max(at);
                    let shard = ShardId(s as u32);
                    let mut ctx = WorkerContext {
                        shard,
                        now: at,
                        lane: &mut unit.lane,
                        lat_row: &lat[s][..],
                    };
                    unit.worker
                        .as_mut()
                        .expect("unit carries its worker")
                        .handle(shard, at, event, &mut ctx);
                    outs.append(&mut unit.lane.outbox);
                    for out in outs.drain(..) {
                        if out.serial {
                            let seq = self.serial_seq;
                            self.serial_seq += 1;
                            self.serial.push(SerialEntry {
                                at: out.at,
                                shard: ShardId(out.to),
                                seq,
                                event: out.event,
                            });
                        } else {
                            // Fine mode is sequential: deliver directly.
                            slots[out.to as usize]
                                .as_mut()
                                .expect("unit is home")
                                .lane
                                .inbox
                                .push(MailEntry {
                                    at: out.at,
                                    from: shard,
                                    seq: out.seq,
                                    event: out.event,
                                });
                        }
                    }
                    continue 'run;
                }

                // Parallel epoch: compute each shard's horizon from the
                // other shards' next times plus channel latencies, capped
                // by the serial fence and the run horizon (inclusive, so
                // +1 ns as an exclusive bound).
                for s in 0..shards {
                    let Some(t_s) = t_eff[s] else { continue };
                    let mut h_s = match self.horizon {
                        Some(h) => h + SimDuration::from_nanos(1),
                        None => FAR_FUTURE,
                    };
                    if let Some(f) = serial_head {
                        h_s = h_s.min(f);
                    }
                    for q in 0..shards {
                        if q == s {
                            continue;
                        }
                        if let (Some(l), Some(t_q)) = (lat[q][s], t_eff[q]) {
                            h_s = h_s.min(t_q + l);
                        }
                    }
                    if t_s >= h_s {
                        continue;
                    }
                    let mut unit = slots[s].take().expect("unit is home");
                    if !batches[s].entries.is_empty() {
                        batches[s].deliver(&mut unit.lane);
                    }
                    unit.horizon = h_s;
                    active.push(unit);
                }
                assert!(
                    !active.is_empty(),
                    "conservative epoch made no progress; is a channel latency missing?"
                );

                dbg_epochs += 1;
                dbg_units += active.len() as u64;
                if active.len() == 1 {
                    dbg_single += 1;
                }
                claims.store(0, AtomicOrdering::Relaxed);
                if threads_eff == 1 || active.len() == 1 {
                    for unit in &mut active {
                        let row = &lat[unit.shard as usize][..];
                        process_unit(unit, &claims, remaining, row);
                    }
                } else {
                    // Contiguous chunks across the pool; assignment does
                    // not affect results, only wall-clock balance. Chunk
                    // vectors are recycled epoch to epoch — the hot loop
                    // allocates nothing.
                    let per = active.len().div_ceil(threads_eff);
                    let mut sent = 0;
                    while !active.is_empty() {
                        let take = per.min(active.len());
                        let mut chunk = spares.pop().unwrap_or_default();
                        chunk.extend(active.drain(..take));
                        job_txs[sent]
                            .send(Job {
                                units: chunk,
                                cap: remaining,
                            })
                            .expect("worker pool is alive");
                        sent += 1;
                    }
                    for _ in 0..sent {
                        let mut units = res_rx.recv().expect("a worker thread panicked");
                        active.append(&mut units);
                        spares.push(units);
                    }
                }

                for unit in active.drain(..) {
                    self.processed += unit.processed;
                    if let Some(t) = unit.max_t {
                        self.now = self.now.max(t);
                    }
                    let home = unit.shard as usize;
                    slots[home] = Some(unit);
                }
                // Route outboxes in ascending source-shard order so the
                // serial queue's insertion seq is thread-count-invariant.
                for (s, slot) in slots.iter_mut().enumerate().take(shards) {
                    let unit = slot.as_mut().expect("unit is home");
                    outs.append(&mut unit.lane.outbox);
                    for out in outs.drain(..) {
                        if out.serial {
                            let seq = self.serial_seq;
                            self.serial_seq += 1;
                            self.serial.push(SerialEntry {
                                at: out.at,
                                shard: ShardId(out.to),
                                seq,
                                event: out.event,
                            });
                        } else {
                            batches[out.to as usize].push(MailEntry {
                                at: out.at,
                                from: ShardId(s as u32),
                                seq: out.seq,
                                event: out.event,
                            });
                        }
                    }
                }
            }
        });

        if std::env::var_os("DREDBOX_EPOCH_DEBUG").is_some() {
            eprintln!(
                "epochs={dbg_epochs} units={dbg_units} single-unit={dbg_single} \
                 serial-phases={dbg_serial} fine-steps={dbg_fine} processed={}",
                self.processed
            );
        }
        // Reassemble the world and put the engine state back.
        let parts: Vec<W::Worker> = slots
            .iter_mut()
            .map(|u| {
                u.as_mut()
                    .expect("unit is home")
                    .worker
                    .take()
                    .expect("unit carries its worker")
            })
            .collect();
        world.reunite(parts);
        for (s, slot) in slots.into_iter().enumerate() {
            let unit = slot.expect("unit is home");
            debug_assert!(unit.lane.outbox.is_empty(), "outbox routed at the barrier");
            self.queues[s] = unit.lane.queue;
            self.mailboxes[s] = unit.lane.inbox;
            for entry in batches[s].entries.drain(..) {
                self.mailboxes[s].push(entry);
            }
            self.send_seqs[s] = unit.lane.send_seq;
        }
        self.rebuild_next_cache();
        outcome
    }

    /// Runs every due serial event with the world reassembled: pops the
    /// (time, shard, seq) head while no shard has parallel work before
    /// it, executes it against the whole world, and routes its staged
    /// follow-ups.
    fn serial_phase<W>(
        &mut self,
        world: &mut W,
        slots: &mut [Option<Unit<E, W::Worker>>],
        batches: &mut [Batch<E>],
        staged: &mut Vec<SerialOp<E>>,
    ) where
        W: ParallelWorld<Event = E>,
    {
        let shards = slots.len();
        let parts: Vec<W::Worker> = slots
            .iter_mut()
            .map(|u| {
                u.as_mut()
                    .expect("unit is home")
                    .worker
                    .take()
                    .expect("unit carries its worker")
            })
            .collect();
        world.reunite(parts);

        loop {
            if let Some(max) = self.max_events {
                if self.processed >= max {
                    break;
                }
            }
            let Some(head_at) = self.serial.peek().map(|e| e.at) else {
                break;
            };
            if let Some(h) = self.horizon {
                if head_at > h {
                    break;
                }
            }
            // Recomputed every iteration: staged schedules may have put
            // new parallel work in front of the next serial event.
            let mut min_parallel: Option<SimTime> = None;
            for s in 0..shards {
                let unit = slots[s].as_ref().expect("unit is home");
                let t = match (unit.lane.next_time(), batches[s].min_at) {
                    (None, None) => continue,
                    (Some(t), None) | (None, Some(t)) => t,
                    (Some(a), Some(b)) => a.min(b),
                };
                min_parallel = Some(match min_parallel {
                    Some(m) => m.min(t),
                    None => t,
                });
            }
            if let Some(p) = min_parallel {
                if head_at > p {
                    break;
                }
            }

            let entry = self.serial.pop().expect("peeked entry must exist");
            self.processed += 1;
            self.now = self.now.max(entry.at);
            let mut ctx = SerialContext {
                now: entry.at,
                shards: shards as u32,
                staged,
            };
            world.handle_serial(entry.shard, entry.at, entry.event, &mut ctx);
            for op in staged.drain(..) {
                if op.serial {
                    let seq = self.serial_seq;
                    self.serial_seq += 1;
                    self.serial.push(SerialEntry {
                        at: op.at,
                        shard: ShardId(op.shard),
                        seq,
                        event: op.event,
                    });
                } else {
                    slots[op.shard as usize]
                        .as_mut()
                        .expect("unit is home")
                        .lane
                        .queue
                        .schedule(op.at, op.event);
                }
            }
        }

        let parts = world.split(shards);
        assert_eq!(
            parts.len(),
            shards,
            "split must produce exactly one worker per shard"
        );
        for (s, worker) in parts.into_iter().enumerate() {
            slots[s].as_mut().expect("unit is home").worker = Some(worker);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{ShardContext, ShardedProcess};

    /// A ring relay with partitioned per-shard logs: tokens hop to the
    /// next shard with a fixed channel latency until their payload
    /// reaches `ceiling`. Implements both the serial and the parallel
    /// traits over identical logic so runs can be compared bit-for-bit.
    struct Relay {
        logs: Vec<Vec<(SimTime, u32)>>,
        latency: SimDuration,
        ceiling: u32,
    }

    impl Relay {
        fn new(shards: usize, ceiling: u32) -> Self {
            Relay {
                logs: (0..shards).map(|_| Vec::new()).collect(),
                latency: SimDuration::from_nanos(7),
                ceiling,
            }
        }
    }

    fn relay_step(
        shards: u32,
        latency: SimDuration,
        ceiling: u32,
        shard: ShardId,
        now: SimTime,
        ev: u32,
    ) -> Option<(ShardId, SimTime, u32)> {
        (ev < ceiling).then(|| (ShardId((shard.0 + 1) % shards), now + latency, ev + 1))
    }

    impl ShardedProcess for Relay {
        type Event = u32;
        fn handle(
            &mut self,
            shard: ShardId,
            now: SimTime,
            ev: u32,
            ctx: &mut ShardContext<'_, u32>,
        ) {
            let shards = self.logs.len() as u32;
            self.logs[shard.0 as usize].push((now, ev));
            if let Some((to, at, next)) =
                relay_step(shards, self.latency, self.ceiling, shard, now, ev)
            {
                ctx.send(to, at, next);
            }
        }
    }

    struct RelayWorker {
        log: Vec<(SimTime, u32)>,
        shards: u32,
        latency: SimDuration,
        ceiling: u32,
    }

    impl WorldWorker for RelayWorker {
        type Event = u32;
        fn handle(
            &mut self,
            shard: ShardId,
            now: SimTime,
            ev: u32,
            ctx: &mut WorkerContext<'_, u32>,
        ) {
            self.log.push((now, ev));
            if let Some((to, at, next)) =
                relay_step(self.shards, self.latency, self.ceiling, shard, now, ev)
            {
                ctx.send(to, at, next);
            }
        }
    }

    impl ParallelWorld for Relay {
        type Event = u32;
        type Worker = RelayWorker;
        fn split(&mut self, shards: usize) -> Vec<RelayWorker> {
            assert_eq!(shards, self.logs.len());
            self.logs
                .iter_mut()
                .map(|log| RelayWorker {
                    log: mem::take(log),
                    shards: shards as u32,
                    latency: self.latency,
                    ceiling: self.ceiling,
                })
                .collect()
        }
        fn reunite(&mut self, workers: Vec<RelayWorker>) {
            for (slot, worker) in self.logs.iter_mut().zip(workers) {
                *slot = worker.log;
            }
        }
        fn latency(&self, _from: ShardId, _to: ShardId) -> Option<SimDuration> {
            Some(self.latency)
        }
        fn handle_serial(
            &mut self,
            _shard: ShardId,
            _now: SimTime,
            _ev: u32,
            _ctx: &mut SerialContext<'_, u32>,
        ) {
            unreachable!("the relay schedules no serial events")
        }
    }

    fn seeded_engine(shards: usize) -> ShardedEngine<u32> {
        let mut engine = ShardedEngine::new(shards);
        for s in 0..shards as u32 {
            engine.schedule(ShardId(s), SimTime::from_nanos(u64::from(s % 3)), s * 1000);
        }
        engine
    }

    /// Serial `run` and `run_threaded` at 1/2/4 workers must agree on
    /// every log byte, the clock, the outcome and the processed count.
    #[test]
    fn threaded_matches_serial_bit_for_bit() {
        let shards = 4;
        let mut serial_engine = seeded_engine(shards);
        let mut serial_world = Relay::new(shards, 4200);
        let serial_outcome = serial_engine.run(&mut serial_world);

        for threads in [1, 2, 4, 9] {
            let mut engine = seeded_engine(shards);
            let mut world = Relay::new(shards, 4200);
            let outcome = engine.run_threaded(&mut world, threads);
            assert_eq!(outcome, serial_outcome, "threads={threads}");
            assert_eq!(world.logs, serial_world.logs, "threads={threads}");
            assert_eq!(engine.now(), serial_engine.now(), "threads={threads}");
            assert_eq!(
                engine.processed(),
                serial_engine.processed(),
                "threads={threads}"
            );
            assert_eq!(
                engine.pending(),
                serial_engine.pending(),
                "threads={threads}"
            );
        }
    }

    /// Event budgets and horizons are global and land on the same event
    /// in serial and threaded runs.
    #[test]
    fn budget_and_horizon_are_global_and_identical() {
        let shards = 4;
        for (budget, horizon) in [
            (Some(937), None),
            (None, Some(SimTime::from_nanos(4000))),
            (Some(100), Some(SimTime::from_nanos(350))),
        ] {
            let build = || {
                let mut e = seeded_engine(shards);
                if let Some(b) = budget {
                    e = e.with_event_budget(b);
                }
                if let Some(h) = horizon {
                    e = e.with_horizon(h);
                }
                e
            };
            let mut serial_engine = build();
            let mut serial_world = Relay::new(shards, u32::MAX);
            let serial_outcome = serial_engine.run(&mut serial_world);

            for threads in [1, 2, 4] {
                let mut engine = build();
                let mut world = Relay::new(shards, u32::MAX);
                let outcome = engine.run_threaded(&mut world, threads);
                assert_eq!(outcome, serial_outcome, "threads={threads}");
                assert_eq!(
                    engine.processed(),
                    serial_engine.processed(),
                    "threads={threads}"
                );
                assert_eq!(world.logs, serial_world.logs, "threads={threads}");
                assert_eq!(engine.now(), serial_engine.now(), "threads={threads}");
            }
        }
    }

    /// A world with serial barrier events: each shard counts local
    /// ticks; a serial census reads the *whole* world (sum across
    /// shards) and seeds another tick on every shard. The census value
    /// proves the barrier saw every shard caught up to the fence.
    struct Census {
        counts: Vec<u64>,
        censuses: Vec<(SimTime, u64)>,
    }

    #[derive(Debug)]
    enum CensusEvent {
        Tick,
        Census(u32),
    }

    struct CensusWorker {
        count: u64,
    }

    impl WorldWorker for CensusWorker {
        type Event = CensusEvent;
        fn handle(
            &mut self,
            shard: ShardId,
            now: SimTime,
            ev: CensusEvent,
            ctx: &mut WorkerContext<'_, CensusEvent>,
        ) {
            match ev {
                CensusEvent::Tick => {
                    self.count += 1;
                    if self.count < 40 {
                        ctx.schedule(
                            now + SimDuration::from_nanos(10 + u64::from(shard.0)),
                            CensusEvent::Tick,
                        );
                    }
                }
                CensusEvent::Census(_) => unreachable!("census events are serial"),
            }
        }
    }

    impl ParallelWorld for Census {
        type Event = CensusEvent;
        type Worker = CensusWorker;
        fn split(&mut self, shards: usize) -> Vec<CensusWorker> {
            assert_eq!(shards, self.counts.len());
            self.counts
                .iter()
                .map(|&count| CensusWorker { count })
                .collect()
        }
        fn reunite(&mut self, workers: Vec<CensusWorker>) {
            for (slot, worker) in self.counts.iter_mut().zip(workers) {
                *slot = worker.count;
            }
        }
        fn latency(&self, _from: ShardId, _to: ShardId) -> Option<SimDuration> {
            Some(SimDuration::from_nanos(50))
        }
        fn handle_serial(
            &mut self,
            shard: ShardId,
            now: SimTime,
            ev: CensusEvent,
            ctx: &mut SerialContext<'_, CensusEvent>,
        ) {
            let CensusEvent::Census(round) = ev else {
                unreachable!("ticks are parallel events")
            };
            let total: u64 = self.counts.iter().sum();
            self.censuses.push((now, total));
            for s in 0..self.counts.len() as u32 {
                ctx.schedule(
                    ShardId(s),
                    now + SimDuration::from_nanos(5),
                    CensusEvent::Tick,
                );
            }
            if round < 3 {
                ctx.schedule_serial(
                    shard,
                    now + SimDuration::from_nanos(200),
                    CensusEvent::Census(round + 1),
                );
            }
        }
    }

    #[test]
    fn serial_events_fence_the_run_identically_at_all_thread_counts() {
        let run = |threads: usize| {
            let shards = 3;
            let mut engine = ShardedEngine::new(shards);
            for s in 0..shards as u32 {
                engine.schedule(ShardId(s), SimTime::ZERO, CensusEvent::Tick);
            }
            engine.schedule_serial(ShardId(0), SimTime::from_nanos(120), CensusEvent::Census(0));
            let mut world = Census {
                counts: vec![0; shards],
                censuses: Vec::new(),
            };
            let outcome = engine.run_threaded(&mut world, threads);
            (
                outcome,
                world.counts,
                world.censuses,
                engine.processed(),
                engine.now(),
            )
        };
        let baseline = run(1);
        assert_eq!(baseline.0, RunOutcome::Drained);
        assert_eq!(baseline.2.len(), 4, "all four census rounds ran");
        // Censuses read cumulative sums, so they are strictly increasing.
        assert!(baseline.2.windows(2).all(|w| w[0].1 < w[1].1));
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), baseline, "threads={threads}");
        }
    }

    /// `send_serial` from a worker routes through the barrier queue.
    #[test]
    fn worker_serial_sends_reach_the_barrier() {
        struct Probe {
            fired: Vec<(SimTime, ShardId)>,
        }
        struct ProbeWorker;
        impl WorldWorker for ProbeWorker {
            type Event = u8;
            fn handle(
                &mut self,
                shard: ShardId,
                now: SimTime,
                ev: u8,
                ctx: &mut WorkerContext<'_, u8>,
            ) {
                if ev == 0 {
                    ctx.send_serial(ShardId(1 - shard.0), now + SimDuration::from_nanos(90), 1);
                }
            }
        }
        impl ParallelWorld for Probe {
            type Event = u8;
            type Worker = ProbeWorker;
            fn split(&mut self, shards: usize) -> Vec<ProbeWorker> {
                (0..shards).map(|_| ProbeWorker).collect()
            }
            fn reunite(&mut self, _workers: Vec<ProbeWorker>) {}
            fn latency(&self, _f: ShardId, _t: ShardId) -> Option<SimDuration> {
                Some(SimDuration::from_nanos(90))
            }
            fn handle_serial(
                &mut self,
                shard: ShardId,
                now: SimTime,
                ev: u8,
                _ctx: &mut SerialContext<'_, u8>,
            ) {
                assert_eq!(ev, 1);
                self.fired.push((now, shard));
            }
        }
        for threads in [1, 2] {
            let mut engine = ShardedEngine::new(2);
            engine.schedule(ShardId(0), SimTime::from_nanos(3), 0);
            let mut world = Probe { fired: Vec::new() };
            assert_eq!(
                engine.run_threaded(&mut world, threads),
                RunOutcome::Drained
            );
            assert_eq!(world.fired, vec![(SimTime::from_nanos(93), ShardId(1))]);
            assert_eq!(engine.processed(), 2);
        }
    }

    /// With a single shard and no channels, the epoch runner degenerates
    /// to the plain loop and matches `run` exactly.
    #[test]
    fn single_shard_matches_serial() {
        let mut serial_engine = ShardedEngine::new(1).with_horizon(SimTime::from_nanos(600));
        serial_engine.schedule(ShardId(0), SimTime::ZERO, 0);
        let mut serial_world = Relay::new(1, u32::MAX);
        let serial_outcome = serial_engine.run(&mut serial_world);
        assert_eq!(serial_outcome, RunOutcome::HorizonReached);

        let mut engine = ShardedEngine::new(1).with_horizon(SimTime::from_nanos(600));
        engine.schedule(ShardId(0), SimTime::ZERO, 0);
        let mut world = Relay::new(1, u32::MAX);
        assert_eq!(engine.run_threaded(&mut world, 4), serial_outcome);
        assert_eq!(world.logs, serial_world.logs);
        assert_eq!(engine.now(), serial_engine.now());
        assert_eq!(engine.processed(), serial_engine.processed());
    }

    /// A declared zero-latency channel is rejected up front.
    #[test]
    #[should_panic(expected = "zero-latency channel")]
    fn zero_latency_channel_panics() {
        struct Zero;
        struct ZeroWorker;
        impl WorldWorker for ZeroWorker {
            type Event = ();
            fn handle(&mut self, _s: ShardId, _n: SimTime, _e: (), _c: &mut WorkerContext<'_, ()>) {
            }
        }
        impl ParallelWorld for Zero {
            type Event = ();
            type Worker = ZeroWorker;
            fn split(&mut self, shards: usize) -> Vec<ZeroWorker> {
                (0..shards).map(|_| ZeroWorker).collect()
            }
            fn reunite(&mut self, _w: Vec<ZeroWorker>) {}
            fn latency(&self, _f: ShardId, _t: ShardId) -> Option<SimDuration> {
                Some(SimDuration::ZERO)
            }
            fn handle_serial(
                &mut self,
                _s: ShardId,
                _n: SimTime,
                _e: (),
                _c: &mut SerialContext<'_, ()>,
            ) {
            }
        }
        let mut engine = ShardedEngine::new(2);
        engine.schedule(ShardId(0), SimTime::ZERO, ());
        engine.run_threaded(&mut Zero, 2);
    }

    /// A send that beats its declared channel latency is a contract
    /// violation and panics.
    #[test]
    #[should_panic(expected = "beats the declared channel latency")]
    fn undercutting_the_channel_latency_panics() {
        struct Cheat;
        struct CheatWorker;
        impl WorldWorker for CheatWorker {
            type Event = ();
            fn handle(
                &mut self,
                shard: ShardId,
                now: SimTime,
                _e: (),
                ctx: &mut WorkerContext<'_, ()>,
            ) {
                ctx.send(ShardId(1 - shard.0), now + SimDuration::from_nanos(1), ());
            }
        }
        impl ParallelWorld for Cheat {
            type Event = ();
            type Worker = CheatWorker;
            fn split(&mut self, shards: usize) -> Vec<CheatWorker> {
                (0..shards).map(|_| CheatWorker).collect()
            }
            fn reunite(&mut self, _w: Vec<CheatWorker>) {}
            fn latency(&self, _f: ShardId, _t: ShardId) -> Option<SimDuration> {
                Some(SimDuration::from_nanos(100))
            }
            fn handle_serial(
                &mut self,
                _s: ShardId,
                _n: SimTime,
                _e: (),
                _c: &mut SerialContext<'_, ()>,
            ) {
            }
        }
        let mut engine = ShardedEngine::new(2);
        engine.schedule(ShardId(0), SimTime::ZERO, ());
        engine.run_threaded(&mut Cheat, 1);
    }
}
