//! Discrete-event simulation substrate for the dReDBox reproduction.
//!
//! The dReDBox prototype (Bielski et al., DATE 2018) is a *hardware* rack-scale
//! system. This workspace reproduces its evaluation in simulation; every other
//! crate in the workspace builds on the primitives provided here:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`], [`SimDuration`]).
//! * [`event`] — a deterministic event queue keyed by time and insertion order.
//! * [`engine`] — a small engine that drains an [`event::EventQueue`] against a
//!   user-provided world state.
//! * [`shard`] — the same engine partitioned into per-shard calendars (one per
//!   rack) with deterministic (time, shard, seq) cross-shard mailboxes.
//! * [`arena`] — generational slab arenas giving the scenario hot path stable
//!   `u32` slots and an allocation-free steady state.
//! * [`rng`] — a seedable, reproducible random-number generator wrapper so that
//!   every experiment in the repository is deterministic given a seed.
//! * [`queue`] — deterministic FIFO serialization of control-plane requests
//!   with a per-queued-request penalty.
//! * [`stats`] — summary statistics, percentiles and box-plot summaries used by
//!   the figure-reproduction harnesses.
//! * [`units`] — strongly-typed quantities (bytes, bandwidth, optical power,
//!   electrical power) used across the hardware models.
//! * [`report`] — small table/series containers used to print "paper vs.
//!   measured" experiment outputs.
//!
//! # Example
//!
//! ```
//! use dredbox_sim::prelude::*;
//!
//! let mut queue = EventQueue::<&'static str>::new();
//! queue.schedule(SimTime::from_micros(3), "late");
//! queue.schedule(SimTime::from_nanos(10), "early");
//! let (t, ev) = queue.pop().expect("event");
//! assert_eq!(ev, "early");
//! assert_eq!(t, SimTime::from_nanos(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod parallel;
pub mod queue;
pub mod report;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod units;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::arena::{SlotArena, SlotKey};
    pub use crate::engine::{Engine, Process, RunOutcome};
    pub use crate::error::SimError;
    pub use crate::event::EventQueue;
    pub use crate::fault::{
        FailurePlan, FailureSchedule, FaultInjector, FaultKind, FaultSite, PlannedFault, SiteCounts,
    };
    pub use crate::parallel::{ParallelWorld, SerialContext, WorkerContext, WorldWorker};
    pub use crate::queue::{ControlPlaneQueue, QueueAdmission};
    pub use crate::report::{Figure, Row, Series, Table};
    pub use crate::rng::SimRng;
    pub use crate::shard::{ShardContext, ShardId, ShardedEngine, ShardedProcess};
    pub use crate::stats::{BoxPlot, Histogram, Summary};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::units::{Bandwidth, ByteSize, DecibelMilliwatts, Milliwatts, Watts};
}

pub use error::SimError;
pub use time::{SimDuration, SimTime};
