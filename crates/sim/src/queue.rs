//! FIFO serialization of control-plane requests.
//!
//! The SDM controller is a single autonomous service: concurrent requests do
//! not execute in parallel, they queue. [`ControlPlaneQueue`] models that
//! serialization point for any control plane — the dReDBox SDM controller
//! (`scale_up_burst`, the scenario engine's per-event latency injection) and
//! the conventional-cloud baseline (`ScaleOutBaseline`) alike — so the
//! per-queued-request penalty is charged by one model everywhere.
//!
//! A request admitted at `now` with service time `s` starts once every
//! request ahead of it has completed, pays a fixed penalty for each request
//! still queued ahead of it (scheduler / state-store contention), and
//! completes `s` later. The queue is purely deterministic: no randomness,
//! no wall clock.
//!
//! ```
//! use dredbox_sim::queue::ControlPlaneQueue;
//! use dredbox_sim::time::{SimDuration, SimTime};
//!
//! let mut q = ControlPlaneQueue::new(SimDuration::from_millis(1));
//! let a = q.admit(SimTime::ZERO, SimDuration::from_millis(10));
//! let b = q.admit(SimTime::ZERO, SimDuration::from_millis(10));
//! assert_eq!(a.queue_wait, SimDuration::ZERO);
//! // b waits for a's 10 ms of service plus one queued-request penalty.
//! assert_eq!(b.queue_wait, SimDuration::from_millis(11));
//! assert_eq!(b.completion, SimTime::ZERO + SimDuration::from_millis(21));
//! ```

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// What one admitted request experienced at the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueAdmission {
    /// When the request's own service began.
    pub start: SimTime,
    /// When the request's own service completed.
    pub completion: SimTime,
    /// Time spent waiting behind earlier requests (including penalties).
    pub queue_wait: SimDuration,
    /// Requests that were still in the queue ahead of this one.
    pub queued_ahead: usize,
}

/// A FIFO queue serializing requests through a single-server control plane,
/// charging a fixed penalty per request queued ahead of a new arrival.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ControlPlaneQueue {
    /// Extra delay charged per request found queued ahead of an arrival.
    per_queued_penalty: SimDuration,
    /// Completion times of admitted-but-not-yet-finished requests,
    /// ascending.
    completions: VecDeque<SimTime>,
    served: u64,
    total_wait: SimDuration,
    peak_depth: usize,
}

impl ControlPlaneQueue {
    /// Creates an idle queue with the given per-queued-request penalty.
    pub fn new(per_queued_penalty: SimDuration) -> Self {
        ControlPlaneQueue {
            per_queued_penalty,
            ..ControlPlaneQueue::default()
        }
    }

    /// The configured per-queued-request penalty.
    pub fn per_queued_penalty(&self) -> SimDuration {
        self.per_queued_penalty
    }

    /// Admits a request arriving at `now` that needs `service` of exclusive
    /// controller time. Returns when it starts, when it completes and how
    /// long it queued.
    pub fn admit(&mut self, now: SimTime, service: SimDuration) -> QueueAdmission {
        while self.completions.front().is_some_and(|&done| done <= now) {
            self.completions.pop_front();
        }
        let queued_ahead = self.completions.len();
        let start = match self.completions.back() {
            Some(&busy_until) => {
                busy_until.max(now) + self.per_queued_penalty.saturating_mul(queued_ahead as u64)
            }
            None => now,
        };
        let completion = start + service;
        self.completions.push_back(completion);
        self.served += 1;
        let queue_wait = start.saturating_duration_since(now);
        self.total_wait += queue_wait;
        self.peak_depth = self.peak_depth.max(queued_ahead + 1);
        QueueAdmission {
            start,
            completion,
            queue_wait,
            queued_ahead,
        }
    }

    /// Requests still queued or in service at `now`.
    pub fn depth(&self, now: SimTime) -> usize {
        self.completions.iter().filter(|&&done| done > now).count()
    }

    /// Total requests admitted so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Cumulative time requests spent queueing (excluding their own
    /// service).
    pub fn total_wait(&self) -> SimDuration {
        self.total_wait
    }

    /// The deepest the queue ever got (including the request in service).
    pub fn peak_depth(&self) -> usize {
        self.peak_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_queue_serves_immediately() {
        let mut q = ControlPlaneQueue::new(SimDuration::from_millis(2));
        let t = SimTime::from_secs(5);
        let a = q.admit(t, SimDuration::from_millis(7));
        assert_eq!(a.start, t);
        assert_eq!(a.completion, t + SimDuration::from_millis(7));
        assert_eq!(a.queue_wait, SimDuration::ZERO);
        assert_eq!(a.queued_ahead, 0);
        assert_eq!(q.depth(t), 1);
        assert_eq!(q.depth(t + SimDuration::from_millis(7)), 0);
    }

    #[test]
    fn simultaneous_requests_serialize_with_penalties() {
        let mut q = ControlPlaneQueue::new(SimDuration::from_millis(1));
        let s = SimDuration::from_millis(10);
        let admissions: Vec<QueueAdmission> = (0..4).map(|_| q.admit(SimTime::ZERO, s)).collect();
        // Request i waits i services plus 1 + 2 + … + i penalties.
        for (i, a) in admissions.iter().enumerate() {
            let penalties: u64 = (1..=i as u64).sum();
            let expected = SimDuration::from_millis(10 * i as u64 + penalties);
            assert_eq!(a.queue_wait, expected, "request {i}");
            assert_eq!(a.queued_ahead, i);
        }
        assert_eq!(q.served(), 4);
        assert_eq!(q.peak_depth(), 4);
        assert!(q.total_wait() > SimDuration::ZERO);
    }

    #[test]
    fn drained_queue_resets_and_late_arrivals_skip_the_wait() {
        let mut q = ControlPlaneQueue::new(SimDuration::from_millis(5));
        let a = q.admit(SimTime::ZERO, SimDuration::from_secs(1));
        let late = q.admit(
            a.completion + SimDuration::from_secs(1),
            SimDuration::from_secs(1),
        );
        assert_eq!(late.queue_wait, SimDuration::ZERO);
        assert_eq!(late.queued_ahead, 0);
        // An arrival while the late request runs queues behind it only.
        let mid = q.admit(late.start, SimDuration::from_secs(1));
        assert_eq!(mid.queued_ahead, 1);
        assert_eq!(mid.start, late.completion + SimDuration::from_millis(5));
    }

    #[test]
    fn zero_penalty_is_pure_fifo() {
        let mut q = ControlPlaneQueue::new(SimDuration::ZERO);
        let s = SimDuration::from_millis(3);
        let a = q.admit(SimTime::ZERO, s);
        let b = q.admit(SimTime::ZERO, s);
        let c = q.admit(SimTime::ZERO, s);
        assert_eq!(b.start, a.completion);
        assert_eq!(c.completion, SimTime::ZERO + s.saturating_mul(3));
    }
}
