//! Simulated time.
//!
//! All dReDBox latency models work at nanosecond resolution: remote memory
//! round trips are hundreds of nanoseconds, while the orchestration-agility
//! experiment (Figure 10 of the paper) runs over tens of seconds. A `u64`
//! nanosecond counter covers both comfortably (~584 years of simulated time).

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute instant in simulated time, measured in nanoseconds since the
/// start of the simulation.
///
/// ```
/// use dredbox_sim::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_micros(2);
/// assert_eq!(t.as_nanos(), 2_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// ```
/// use dredbox_sim::time::SimDuration;
/// let d = SimDuration::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros_f64(), 3_500.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after the origin.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the origin.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the origin.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is later than self"),
        )
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from a floating-point number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "seconds must be finite and non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a duration from a floating-point number of microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `micros` is negative or not finite.
    pub fn from_micros_f64(micros: f64) -> Self {
        assert!(
            micros.is_finite() && micros >= 0.0,
            "microseconds must be finite and non-negative"
        );
        SimDuration((micros * 1e3).round() as u64)
    }

    /// Creates a duration from a floating-point number of nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `nanos` is negative or not finite.
    pub fn from_nanos_f64(nanos: f64) -> Self {
        assert!(
            nanos.is_finite() && nanos >= 0.0,
            "nanoseconds must be finite and non-negative"
        );
        SimDuration(nanos.round() as u64)
    }

    /// Length in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Length in milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Length in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the duration by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns} ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3} us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3} ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3} s", ns as f64 / 1e9)
        }
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`).
dredbox_snap::snap_newtype!(SimTime(u64));
dredbox_snap::snap_newtype!(SimDuration(u64));

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_are_consistent() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let start = SimTime::from_micros(5);
        let later = start + SimDuration::from_nanos(123);
        assert_eq!(later.duration_since(start), SimDuration::from_nanos(123));
        assert_eq!(later - SimDuration::from_nanos(123), start);
    }

    #[test]
    fn saturating_duration_since_clamps_to_zero() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_nanos(10));
    }

    #[test]
    #[should_panic]
    fn duration_since_panics_when_reversed() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_chooses_sensible_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17 ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000 us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000 ms");
        assert_eq!(SimDuration::from_secs(4).to_string(), "4.000 s");
    }

    #[test]
    fn from_float_constructors_round() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_micros_f64(0.25).as_nanos(), 250);
        assert_eq!(SimDuration::from_nanos_f64(7.6).as_nanos(), 8);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1_u64, 2, 3]
            .iter()
            .map(|&n| SimDuration::from_nanos(n))
            .sum();
        assert_eq!(total, SimDuration::from_nanos(6));
    }

    proptest! {
        #[test]
        fn add_then_subtract_is_identity(base in 0u64..1_000_000_000_000, delta in 0u64..1_000_000_000) {
            let t = SimTime::from_nanos(base);
            let d = SimDuration::from_nanos(delta);
            prop_assert_eq!((t + d) - d, t);
            prop_assert_eq!((t + d).duration_since(t), d);
        }

        #[test]
        fn duration_ordering_matches_nanos(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let da = SimDuration::from_nanos(a);
            let db = SimDuration::from_nanos(b);
            prop_assert_eq!(da < db, a < b);
        }
    }
}
