//! Generational slab arena for hot-path simulation state.
//!
//! The scenario engine interns per-VM and per-brick state in
//! [`SlotArena`]s instead of `BTreeMap`s: a live object occupies a stable
//! `u32` slot, lookups are a bounds check plus a generation compare, and
//! removed slots are recycled through a LIFO free list — so steady-state
//! admit/depart churn allocates nothing once the arena has grown to the
//! workload's high-water mark.
//!
//! Every slot carries a generation that is bumped when the slot is
//! vacated. A [`SlotKey`] (slot index + generation) therefore acts like a
//! weak reference: a key held after its object was removed misses even if
//! the slot has been reused, which is exactly the behavior departed VM
//! handles need in a discrete-event replay where stale events keep firing.
//!
//! Everything is deterministic: insertion into an empty arena fills slots
//! in ascending index order, the free list is LIFO, and iteration visits
//! occupied slots in index order. Two arenas that saw the same operation
//! sequence compare equal — the property `tests/arena_invariants.rs`
//! pins against a from-scratch `BTreeMap` rebuild.
//!
//! ```
//! use dredbox_sim::arena::SlotArena;
//!
//! let mut arena = SlotArena::new();
//! let a = arena.insert("alpha");
//! let b = arena.insert("beta");
//! assert_eq!(arena.get(a), Some(&"alpha"));
//! assert_eq!(arena.remove(a), Some("alpha"));
//! // The slot is recycled, but the stale key keeps missing.
//! let c = arena.insert("gamma");
//! assert_eq!(c.index(), a.index());
//! assert_ne!(c, a);
//! assert_eq!(arena.get(a), None);
//! assert_eq!(arena.get(b), Some(&"beta"));
//! assert_eq!(arena.len(), 2);
//! ```

use serde::{Deserialize, Serialize};

/// A stable reference into a [`SlotArena`]: slot index plus the generation
/// the slot had when the object was inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SlotKey {
    index: u32,
    generation: u32,
}

impl SlotKey {
    /// The slot index this key points at.
    pub fn index(self) -> u32 {
        self.index
    }

    /// The generation the slot had when this key was issued.
    pub fn generation(self) -> u32 {
        self.generation
    }

    /// Packs the key into a `u64` (generation in the high 32 bits), so
    /// external handle types can wrap a plain integer.
    pub fn to_u64(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.index)
    }

    /// Unpacks a key previously packed with [`SlotKey::to_u64`].
    pub fn from_u64(raw: u64) -> Self {
        SlotKey {
            index: (raw & 0xFFFF_FFFF) as u32,
            generation: (raw >> 32) as u32,
        }
    }
}

/// One slot: its current generation and, when occupied, the value. The
/// generation is bumped on removal, so it always names the generation a
/// *currently issued* key must carry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A slab arena with generational keys and a LIFO slot free list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotArena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> SlotArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        SlotArena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Creates an empty arena with room for `capacity` objects before the
    /// slot table reallocates.
    pub fn with_capacity(capacity: usize) -> Self {
        SlotArena {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no live objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots the arena has ever grown to (live + recyclable).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Inserts `value`, recycling the most recently freed slot if one
    /// exists, and returns its key.
    pub fn insert(&mut self, value: T) -> SlotKey {
        self.insert_with(|_| value)
    }

    /// Inserts the value built by `make`, which receives the key the value
    /// will live under — for objects that store their own id.
    pub fn insert_with(&mut self, make: impl FnOnce(SlotKey) -> T) -> SlotKey {
        self.len += 1;
        match self.free.pop() {
            Some(index) => {
                let slot = &mut self.slots[index as usize];
                let key = SlotKey {
                    index,
                    generation: slot.generation,
                };
                slot.value = Some(make(key));
                key
            }
            None => {
                let key = SlotKey {
                    index: u32::try_from(self.slots.len()).expect("arena exceeds u32 slots"),
                    generation: 0,
                };
                self.slots.push(Slot {
                    generation: 0,
                    value: Some(make(key)),
                });
                key
            }
        }
    }

    /// The live object under `key`, if the key is current.
    pub fn get(&self, key: SlotKey) -> Option<&T> {
        self.slots
            .get(key.index as usize)
            .filter(|slot| slot.generation == key.generation)
            .and_then(|slot| slot.value.as_ref())
    }

    /// Mutable access to the live object under `key`, if the key is
    /// current.
    pub fn get_mut(&mut self, key: SlotKey) -> Option<&mut T> {
        self.slots
            .get_mut(key.index as usize)
            .filter(|slot| slot.generation == key.generation)
            .and_then(|slot| slot.value.as_mut())
    }

    /// Whether `key` refers to a live object.
    pub fn contains(&self, key: SlotKey) -> bool {
        self.get(key).is_some()
    }

    /// Removes and returns the object under `key`. The slot's generation
    /// is bumped (stale keys keep missing) and the slot joins the free
    /// list for recycling.
    pub fn remove(&mut self, key: SlotKey) -> Option<T> {
        let slot = self
            .slots
            .get_mut(key.index as usize)
            .filter(|slot| slot.generation == key.generation)?;
        let value = slot.value.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(key.index);
        self.len -= 1;
        Some(value)
    }

    /// Iterates over live objects in ascending slot-index order.
    pub fn iter(&self) -> impl Iterator<Item = (SlotKey, &T)> {
        self.slots.iter().enumerate().filter_map(|(index, slot)| {
            slot.value.as_ref().map(|value| {
                (
                    SlotKey {
                        index: index as u32,
                        generation: slot.generation,
                    },
                    value,
                )
            })
        })
    }

    /// Iterates over live objects (values only) in ascending slot-index
    /// order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(|slot| slot.value.as_ref())
    }

    /// Removes every object, clears the free list and resets generations.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.len = 0;
    }
}

impl<T> Default for SlotArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

// Deterministic snapshot codec impls (see `dredbox_snap`). The arena
// encodes its full slot table — holes, generations and free list included —
// so restored handles (`SlotKey`s) stay valid bit-for-bit.
dredbox_snap::snap_struct!(SlotKey { index, generation });

impl<T: dredbox_snap::Snap> dredbox_snap::Snap for Slot<T> {
    fn snap(&self, out: &mut Vec<u8>) {
        self.generation.snap(out);
        self.value.snap(out);
    }
    fn unsnap(r: &mut dredbox_snap::Reader<'_>) -> Result<Self, dredbox_snap::SnapError> {
        Ok(Slot {
            generation: dredbox_snap::Snap::unsnap(r)?,
            value: dredbox_snap::Snap::unsnap(r)?,
        })
    }
}

impl<T: dredbox_snap::Snap> dredbox_snap::Snap for SlotArena<T> {
    fn snap(&self, out: &mut Vec<u8>) {
        self.slots.snap(out);
        self.free.snap(out);
        self.len.snap(out);
    }
    fn unsnap(r: &mut dredbox_snap::Reader<'_>) -> Result<Self, dredbox_snap::SnapError> {
        Ok(SlotArena {
            slots: dredbox_snap::Snap::unsnap(r)?,
            free: dredbox_snap::Snap::unsnap(r)?,
            len: dredbox_snap::Snap::unsnap(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = SlotArena::new();
        assert!(arena.is_empty());
        let a = arena.insert(10u32);
        let b = arena.insert(20);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(a), Some(&10));
        assert_eq!(arena.get(b), Some(&20));
        *arena.get_mut(a).unwrap() = 11;
        assert_eq!(arena.remove(a), Some(11));
        assert_eq!(arena.remove(a), None, "double remove misses");
        assert_eq!(arena.len(), 1);
        assert!(!arena.contains(a));
        assert!(arena.contains(b));
    }

    #[test]
    fn slots_recycle_lifo_and_stale_keys_miss() {
        let mut arena = SlotArena::new();
        let keys: Vec<_> = (0..4).map(|i| arena.insert(i)).collect();
        arena.remove(keys[1]);
        arena.remove(keys[3]);
        // LIFO recycling: slot 3 first, then slot 1; only then fresh slots.
        let x = arena.insert(100);
        let y = arena.insert(101);
        let z = arena.insert(102);
        assert_eq!(x.index(), 3);
        assert_eq!(y.index(), 1);
        assert_eq!(z.index(), 4);
        assert_eq!(arena.slot_count(), 5);
        // The recycled slots carry a bumped generation.
        assert_eq!(x.generation(), keys[3].generation() + 1);
        assert_eq!(arena.get(keys[1]), None);
        assert_eq!(arena.get(keys[3]), None);
        assert_eq!(arena.get(x), Some(&100));
    }

    #[test]
    fn iteration_is_in_slot_order() {
        let mut arena = SlotArena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        let c = arena.insert("c");
        arena.remove(b);
        let order: Vec<_> = arena.values().copied().collect();
        assert_eq!(order, vec!["a", "c"]);
        let keys: Vec<_> = arena.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![a, c]);
    }

    #[test]
    fn keys_pack_to_u64_and_back() {
        let mut arena = SlotArena::new();
        let a = arena.insert(1u8);
        arena.remove(a);
        let b = arena.insert(2);
        assert_eq!(SlotKey::from_u64(b.to_u64()), b);
        assert_ne!(a.to_u64(), b.to_u64());
        // A raw integer that never came out of the arena misses cleanly.
        assert_eq!(arena.get(SlotKey::from_u64(99)), None);
    }

    #[test]
    fn insert_with_sees_the_final_key() {
        let mut arena = SlotArena::new();
        let key = arena.insert_with(|k| k.to_u64());
        assert_eq!(arena.get(key), Some(&key.to_u64()));
    }

    #[test]
    fn clear_resets_everything() {
        let mut arena = SlotArena::new();
        let a = arena.insert(1);
        arena.insert(2);
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.slot_count(), 0);
        assert_eq!(arena.get(a), None);
        // Fresh inserts start from slot 0, generation 0 again.
        let b = arena.insert(3);
        assert_eq!((b.index(), b.generation()), (0, 0));
    }
}
