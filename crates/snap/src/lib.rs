//! Deterministic binary snapshot codec.
//!
//! The workspace's `serde` dependency resolves to a vendored API stand-in
//! whose derives are no-ops (the build environment has no crates.io
//! access), so live servicing cannot lean on it for real byte-level
//! save/restore. This crate is the codec the snapshot path actually uses:
//! a small [`Snap`] trait with hand-rolled, deterministic encode/decode —
//! fixed-width little-endian integers, `u64`-prefixed lengths, `f64` by
//! IEEE bit pattern, ordered containers in their iteration order and
//! hash containers re-ordered by key — so the same state always produces
//! the same bytes and the bytes round-trip bit-identically.
//!
//! Every state-bearing crate implements [`Snap`] for its own types next to
//! their definitions (private fields keep the impls out of a central
//! registry) through the [`snap_struct!`], [`snap_newtype!`] and
//! [`snap_unit_enum!`] macros.
//!
//! ```
//! use dredbox_snap::{Reader, Snap};
//!
//! let mut bytes = Vec::new();
//! (42u32, String::from("rack"), vec![1u64, 2, 3]).snap(&mut bytes);
//! let mut r = Reader::new(&bytes);
//! let back = <(u32, String, Vec<u64>)>::unsnap(&mut r)?;
//! assert_eq!(back, (42, String::from("rack"), vec![1, 2, 3]));
//! assert!(r.is_empty());
//! # Ok::<(), dredbox_snap::SnapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// Decoding failure: the byte stream does not describe the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapError {
    /// The reader ran out of bytes.
    Eof {
        /// Bytes the decoder asked for.
        needed: usize,
        /// Bytes left in the stream.
        remaining: usize,
    },
    /// An enum tag byte matched no variant of the named type.
    Tag {
        /// Type being decoded.
        ty: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A string's bytes were not valid UTF-8.
    Utf8,
    /// A length prefix exceeded what the platform can address.
    Length {
        /// The offending length.
        len: u64,
    },
    /// The stream header did not carry the expected magic bytes.
    Magic,
    /// The stream was written by an incompatible format version.
    Version {
        /// Version found in the stream.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
}

impl std::fmt::Display for SnapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapError::Eof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of snapshot: needed {needed} bytes, {remaining} left"
                )
            }
            SnapError::Tag { ty, tag } => write!(f, "invalid tag {tag} while decoding {ty}"),
            SnapError::Utf8 => write!(f, "snapshot string is not valid UTF-8"),
            SnapError::Length { len } => write!(f, "snapshot length {len} is unaddressable"),
            SnapError::Magic => write!(f, "not a snapshot stream (bad magic)"),
            SnapError::Version { found, expected } => {
                write!(f, "snapshot format v{found} incompatible with v{expected}")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// A cursor over an encoded byte stream.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SnapError::Eof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Eof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let chunk = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(chunk)
    }

    /// Takes a `u64` length prefix and converts it to `usize`.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapError::Eof`]; returns [`SnapError::Length`] if the
    /// value does not fit a `usize`.
    pub fn take_len(&mut self) -> Result<usize, SnapError> {
        let raw = u64::unsnap(self)?;
        usize::try_from(raw).map_err(|_| SnapError::Length { len: raw })
    }
}

/// Deterministic binary encode/decode.
///
/// Encoding the same value always produces the same bytes, and decoding
/// those bytes reproduces a value equal to the original — the snapshot
/// invariant the system save/restore path is built on.
pub trait Snap: Sized {
    /// Appends this value's encoding to `out`.
    fn snap(&self, out: &mut Vec<u8>);
    /// Decodes one value from the reader.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] if the stream is truncated or malformed.
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError>;
}

macro_rules! snap_int {
    ($($ty:ty),+) => {
        $(impl Snap for $ty {
            fn snap(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
                let bytes = r.take(std::mem::size_of::<$ty>())?;
                Ok(<$ty>::from_le_bytes(bytes.try_into().expect("exact take")))
            }
        })+
    };
}

snap_int!(u8, u16, u32, u64, i8, i16, i32, i64);

impl Snap for usize {
    fn snap(&self, out: &mut Vec<u8>) {
        (*self as u64).snap(out);
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        r.take_len()
    }
}

impl Snap for bool {
    fn snap(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match u8::unsnap(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(SnapError::Tag { ty: "bool", tag }),
        }
    }
}

impl Snap for f64 {
    fn snap(&self, out: &mut Vec<u8>) {
        self.to_bits().snap(out);
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(f64::from_bits(u64::unsnap(r)?))
    }
}

impl Snap for String {
    fn snap(&self, out: &mut Vec<u8>) {
        self.len().snap(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapError::Utf8)
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.snap(out);
            }
        }
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match u8::unsnap(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::unsnap(r)?)),
            tag => Err(SnapError::Tag { ty: "Option", tag }),
        }
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, out: &mut Vec<u8>) {
        self.len().snap(out);
        for item in self {
            item.snap(out);
        }
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let mut items = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            items.push(T::unsnap(r)?);
        }
        Ok(items)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, out: &mut Vec<u8>) {
        self.len().snap(out);
        for item in self {
            item.snap(out);
        }
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let mut items = VecDeque::with_capacity(len.min(4096));
        for _ in 0..len {
            items.push_back(T::unsnap(r)?);
        }
        Ok(items)
    }
}

impl<T: Snap + Ord> Snap for BTreeSet<T> {
    fn snap(&self, out: &mut Vec<u8>) {
        self.len().snap(out);
        for item in self {
            item.snap(out);
        }
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(T::unsnap(r)?);
        }
        Ok(set)
    }
}

impl<K: Snap + Ord, V: Snap> Snap for BTreeMap<K, V> {
    fn snap(&self, out: &mut Vec<u8>) {
        self.len().snap(out);
        for (k, v) in self {
            k.snap(out);
            v.snap(out);
        }
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = r.take_len()?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let k = K::unsnap(r)?;
            let v = V::unsnap(r)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl<K, V> Snap for HashMap<K, V>
where
    K: Snap + Ord + Clone + std::hash::Hash + Eq,
    V: Snap + Clone,
{
    /// Hash iteration order is not deterministic, so entries are emitted
    /// sorted by key — same state, same bytes, whatever the hasher did.
    fn snap(&self, out: &mut Vec<u8>) {
        let ordered: BTreeMap<K, V> = self.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        ordered.snap(out);
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let ordered = BTreeMap::<K, V>::unsnap(r)?;
        Ok(ordered.into_iter().collect())
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, out: &mut Vec<u8>) {
        self.0.snap(out);
        self.1.snap(out);
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, out: &mut Vec<u8>) {
        self.0.snap(out);
        self.1.snap(out);
        self.2.snap(out);
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::unsnap(r)?, B::unsnap(r)?, C::unsnap(r)?))
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn snap(&self, out: &mut Vec<u8>) {
        for item in self {
            item.snap(out);
        }
    }
    fn unsnap(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::unsnap(r)?);
        }
        match items.try_into() {
            Ok(array) => Ok(array),
            Err(_) => unreachable!("exactly N items decoded"),
        }
    }
}

/// Implements [`Snap`] for a struct with named fields, encoding the listed
/// fields in order. Invoke from the defining module so private fields are
/// in scope.
#[macro_export]
macro_rules! snap_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Snap for $ty {
            fn snap(&self, out: &mut ::std::vec::Vec<u8>) {
                $($crate::Snap::snap(&self.$field, out);)+
            }
            fn unsnap(
                r: &mut $crate::Reader<'_>,
            ) -> ::std::result::Result<Self, $crate::SnapError> {
                ::std::result::Result::Ok($ty {
                    $($field: $crate::Snap::unsnap(r)?,)+
                })
            }
        }
    };
}

/// Implements [`Snap`] for a single-field tuple struct (`Foo(inner)`).
#[macro_export]
macro_rules! snap_newtype {
    ($ty:ident($inner:ty)) => {
        impl $crate::Snap for $ty {
            fn snap(&self, out: &mut ::std::vec::Vec<u8>) {
                $crate::Snap::snap(&self.0, out);
            }
            fn unsnap(
                r: &mut $crate::Reader<'_>,
            ) -> ::std::result::Result<Self, $crate::SnapError> {
                ::std::result::Result::Ok($ty(<$inner as $crate::Snap>::unsnap(r)?))
            }
        }
    };
}

/// Implements [`Snap`] for an enum whose variants carry no data, using the
/// listed byte tags.
#[macro_export]
macro_rules! snap_unit_enum {
    ($ty:ident { $($variant:ident = $tag:literal),+ $(,)? }) => {
        impl $crate::Snap for $ty {
            fn snap(&self, out: &mut ::std::vec::Vec<u8>) {
                let tag: u8 = match self {
                    $($ty::$variant => $tag,)+
                };
                $crate::Snap::snap(&tag, out);
            }
            fn unsnap(
                r: &mut $crate::Reader<'_>,
            ) -> ::std::result::Result<Self, $crate::SnapError> {
                match <u8 as $crate::Snap>::unsnap(r)? {
                    $($tag => ::std::result::Result::Ok($ty::$variant),)+
                    tag => ::std::result::Result::Err($crate::SnapError::Tag {
                        ty: ::std::stringify!($ty),
                        tag,
                    }),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Snap + PartialEq + std::fmt::Debug>(value: T) {
        let mut bytes = Vec::new();
        value.snap(&mut bytes);
        let mut r = Reader::new(&bytes);
        let back = T::unsnap(&mut r).expect("roundtrip decodes");
        assert_eq!(back, value);
        assert!(r.is_empty(), "decoder must consume every byte");
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-7i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(3.25f64);
        roundtrip(f64::NEG_INFINITY);
        roundtrip(String::from("dCOMPUBRICK"));
        roundtrip(String::new());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Some(9u32));
        roundtrip(Option::<u32>::None);
        roundtrip(vec![1u16, 2, 3]);
        roundtrip(VecDeque::from([4u64, 5]));
        roundtrip(BTreeSet::from([(3u64, 1u32), (1, 2)]));
        roundtrip(BTreeMap::from([
            (1u32, String::from("a")),
            (2, String::from("b")),
        ]));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip([7u64; 3]);
    }

    #[test]
    fn hash_maps_encode_sorted() {
        let mut forward = HashMap::new();
        let mut reverse = HashMap::new();
        for k in 0..64u64 {
            forward.insert(k, k * 2);
            reverse.insert(63 - k, (63 - k) * 2);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        forward.snap(&mut a);
        reverse.snap(&mut b);
        assert_eq!(a, b, "insertion order must not leak into the encoding");
        roundtrip(forward);
    }

    #[test]
    fn truncated_streams_error_cleanly() {
        let mut bytes = Vec::new();
        vec![1u64, 2, 3].snap(&mut bytes);
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                Vec::<u64>::unsnap(&mut r).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut r = Reader::new(&[7]);
        assert_eq!(
            bool::unsnap(&mut r),
            Err(SnapError::Tag { ty: "bool", tag: 7 })
        );
        let mut r = Reader::new(&[9]);
        assert!(matches!(
            Option::<u8>::unsnap(&mut r),
            Err(SnapError::Tag {
                ty: "Option",
                tag: 9
            })
        ));
    }

    #[derive(Debug, PartialEq)]
    struct Demo {
        id: u32,
        name: String,
        tags: Vec<u8>,
    }
    snap_struct!(Demo { id, name, tags });

    #[derive(Debug, PartialEq)]
    struct Wrapper(u64);
    snap_newtype!(Wrapper(u64));

    #[derive(Debug, PartialEq)]
    enum Mode {
        Fast,
        Slow,
    }
    snap_unit_enum!(Mode { Fast = 0, Slow = 1 });

    #[test]
    fn macros_generate_working_impls() {
        roundtrip(Demo {
            id: 5,
            name: String::from("rack-0"),
            tags: vec![1, 2],
        });
        roundtrip(Wrapper(99));
        roundtrip(Mode::Fast);
        roundtrip(Mode::Slow);
        let mut r = Reader::new(&[2]);
        assert!(matches!(
            Mode::unsnap(&mut r),
            Err(SnapError::Tag { ty: "Mode", tag: 2 })
        ));
    }
}
